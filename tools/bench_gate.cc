/**
 * @file
 * Perf-regression gate over BENCH_micro.json snapshots.
 *
 * Compares a freshly produced microbenchmark snapshot against the
 * committed baseline and fails when any benchmark present in BOTH
 * documents regressed by more than the threshold (default 25% on
 * nsPerOp).  Benchmarks that exist on only one side are reported as
 * notes, never failures: adding a benchmark must not break CI, and a
 * renamed one shows up as an add+drop pair for a human to judge.
 *
 *   bench_gate <baseline.json> <fresh.json> [--threshold PCT]
 *   bench_gate --selftest
 *
 * Exit status: 0 when every shared benchmark is within the threshold,
 * 1 on a regression, 2 on unusable input (missing file, malformed
 * JSON, wrong schema, empty benchmark list) — so a broken snapshot
 * can never be mistaken for a pass.
 */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "tools/tool_args.hh"

namespace
{

using bear::JsonValue;

const char *const kUsage =
    "usage: bench_gate <baseline.json> <fresh.json> [--threshold PCT]\n"
    "       bench_gate --selftest\n"
    "  --threshold  max allowed nsPerOp regression in percent"
    " (default 25)\n";

constexpr std::uint64_t kDefaultThresholdPct = 25;

/**
 * Extract name -> nsPerOp from one bear-bench-micro-v1 document.
 * Returns false (with a message on stderr) for anything that is not a
 * well-formed, non-empty snapshot.
 */
bool
loadSnapshot(const std::string &label, const std::string &text,
             std::map<std::string, double> &out)
{
    const auto doc = JsonValue::parse(text);
    if (!doc) {
        std::fprintf(stderr, "bench_gate: %s: %s\n", label.c_str(),
                     doc.error().message().c_str());
        return false;
    }
    const JsonValue *schema = doc->find("schema");
    if (!schema || schema->asString() != "bear-bench-micro-v1") {
        std::fprintf(stderr,
                     "bench_gate: %s: not a bear-bench-micro-v1 "
                     "snapshot\n",
                     label.c_str());
        return false;
    }
    const JsonValue *benches = doc->find("benchmarks");
    if (!benches) {
        std::fprintf(stderr, "bench_gate: %s: no \"benchmarks\" array\n",
                     label.c_str());
        return false;
    }
    for (const JsonValue &b : benches->elements()) {
        const JsonValue *name = b.find("name");
        const JsonValue *ns = b.find("nsPerOp");
        if (!name || !ns) {
            std::fprintf(stderr,
                         "bench_gate: %s: benchmark entry without "
                         "name/nsPerOp\n",
                         label.c_str());
            return false;
        }
        out[name->asString()] = ns->asDouble();
    }
    if (out.empty()) {
        std::fprintf(stderr, "bench_gate: %s: empty benchmark list\n",
                     label.c_str());
        return false;
    }
    return true;
}

/**
 * Compare the shared benchmarks.  Returns 0 (all within threshold) or
 * 1 (at least one regression); prints one verdict line per shared
 * benchmark so the CI log shows the whole trajectory, not just the
 * failures.
 */
int
compareSnapshots(const std::map<std::string, double> &base,
                 const std::map<std::string, double> &fresh,
                 std::uint64_t threshold_pct)
{
    const double limit = 1.0 + static_cast<double>(threshold_pct) / 100.0;
    int rc = 0;
    std::size_t shared = 0;
    for (const auto &[name, base_ns] : base) {
        const auto it = fresh.find(name);
        if (it == fresh.end()) {
            std::printf("bench_gate: note: %s only in baseline\n",
                        name.c_str());
            continue;
        }
        ++shared;
        const double fresh_ns = it->second;
        // A zero/negative baseline cannot anchor a ratio; flag it as a
        // regression so a corrupt snapshot never silently passes.
        const bool bad_base = !(base_ns > 0.0) || !std::isfinite(base_ns);
        const bool regressed =
            bad_base || !std::isfinite(fresh_ns)
            || fresh_ns > base_ns * limit;
        const double pct = bad_base
            ? 0.0
            : 100.0 * (fresh_ns / base_ns - 1.0);
        std::printf("bench_gate: %-32s %10.2f -> %10.2f ns/op "
                    "(%+6.1f%%)%s\n",
                    name.c_str(), base_ns, fresh_ns, pct,
                    regressed ? "  REGRESSION" : "");
        if (regressed)
            rc = 1;
    }
    for (const auto &[name, ns] : fresh) {
        if (base.find(name) == base.end())
            std::printf("bench_gate: note: %s only in fresh run "
                        "(%.2f ns/op)\n",
                        name.c_str(), ns);
    }
    if (shared == 0) {
        // Disjoint name sets gate nothing — treat as unusable input.
        std::fprintf(stderr,
                     "bench_gate: no benchmark appears in both "
                     "snapshots\n");
        return 2;
    }
    return rc;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_gate: cannot open %s\n%s",
                     path.c_str(), kUsage);
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

std::string
snapshot(std::initializer_list<std::pair<const char *, double>> rows)
{
    std::ostringstream ss;
    ss << R"({"schema":"bear-bench-micro-v1","benchmarks":[)";
    bool first = true;
    for (const auto &[name, ns] : rows) {
        if (!first)
            ss << ',';
        first = false;
        ss << R"({"name":")" << name << R"(","nsPerOp":)" << ns << '}';
    }
    ss << "]}";
    return ss.str();
}

int
selftest()
{
    int failures = 0;
    auto check = [&](bool cond, const char *what) {
        if (!cond) {
            std::fprintf(stderr, "selftest: FAILED: %s\n", what);
            ++failures;
        }
    };
    auto gate = [&](const std::string &base_text,
                    const std::string &fresh_text,
                    std::uint64_t threshold) {
        std::map<std::string, double> base, fresh;
        if (!loadSnapshot("base", base_text, base)
            || !loadSnapshot("fresh", fresh_text, fresh))
            return 2;
        return compareSnapshots(base, fresh, threshold);
    };

    // Within threshold (24% worse on one bench, 20% better on another).
    check(gate(snapshot({{"A", 100.0}, {"B", 50.0}}),
               snapshot({{"A", 124.0}, {"B", 40.0}}), 25)
              == 0,
          "24% slower must pass a 25% gate");
    // Past threshold on a single shared benchmark.
    check(gate(snapshot({{"A", 100.0}, {"B", 50.0}}),
               snapshot({{"A", 126.0}, {"B", 50.0}}), 25)
              == 1,
          "26% slower must fail a 25% gate");
    // Added/removed benchmarks are notes, not failures.
    check(gate(snapshot({{"A", 100.0}, {"Old", 10.0}}),
               snapshot({{"A", 100.0}, {"New", 10.0}}), 25)
              == 0,
          "add+drop around a stable shared bench must pass");
    // Disjoint snapshots gate nothing: unusable, not a pass.
    check(gate(snapshot({{"A", 100.0}}), snapshot({{"B", 100.0}}), 25)
              == 2,
          "disjoint name sets must be rejected");
    // A zero baseline can't anchor a ratio.
    check(gate(snapshot({{"A", 0.0}}), snapshot({{"A", 1.0}}), 25) == 1,
          "zero baseline must flag, never pass");
    // Malformed / wrong-schema inputs are rejected before comparing.
    check(gate("{not json", snapshot({{"A", 1.0}}), 25) == 2,
          "malformed baseline must be rejected");
    check(gate(R"({"schema":"other","benchmarks":[]})",
               snapshot({{"A", 1.0}}), 25)
              == 2,
          "wrong schema tag must be rejected");
    check(gate(R"({"schema":"bear-bench-micro-v1","benchmarks":[]})",
               snapshot({{"A", 1.0}}), 25)
              == 2,
          "empty benchmark list must be rejected");
    // Custom threshold is honoured.
    check(gate(snapshot({{"A", 100.0}}), snapshot({{"A", 104.0}}), 5)
              == 0,
          "4% slower must pass a 5% gate");
    check(gate(snapshot({{"A", 100.0}}), snapshot({{"A", 106.0}}), 5)
              == 1,
          "6% slower must fail a 5% gate");

    if (failures == 0)
        std::printf("bench_gate selftest: all checks passed\n");
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const bear::tools::ToolArgs args(argc, argv, {"threshold"}, kUsage);
    if (args.selftest())
        return selftest();
    if (args.positional().size() != 2) {
        std::fprintf(stderr, "bench_gate: need a baseline and a fresh "
                             "snapshot\n%s",
                     kUsage);
        return 2;
    }
    const std::uint64_t threshold =
        args.u64Or("threshold", kDefaultThresholdPct);
    std::string base_text, fresh_text;
    if (!readFile(args.positional()[0], base_text)
        || !readFile(args.positional()[1], fresh_text))
        return 2;
    std::map<std::string, double> base, fresh;
    if (!loadSnapshot(args.positional()[0], base_text, base)
        || !loadSnapshot(args.positional()[1], fresh_text, fresh))
        return 2;
    return compareSnapshots(base, fresh, threshold);
}
