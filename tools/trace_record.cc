/**
 * @file
 * Record a synthetic workload profile into a .beartrace file.
 *
 *   trace_record <profile> <out.beartrace> [--refs N] [--cores N]
 *                [--seed S]
 *   trace_record --selftest
 *
 * The recorded streams use exactly the runner's construction — one
 * WorkloadStream per core, seeded seed + 0x1000*(core+1), scaled by
 * BEAR_SCALE — so a file recorded here and replayed through
 * BEAR_TRACE_IN reproduces a live run of the same profile
 * byte-for-byte (the round-trip CI smoke and test_trace assert this).
 * --refs is per core and defaults to the runner's warm-up + measure
 * budget, i.e. one full run's worth of references; BEAR_WARMUP /
 * BEAR_MEASURE / BEAR_SCALE apply as usual.
 *
 * The self-test records a small two-core trace to a temporary file,
 * reads it back record-for-record, and checks the totals, so CI
 * exercises the writer→reader path with zero simulation.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "tools/tool_args.hh"
#include "trace/trace_reader.hh"
#include "trace/trace_writer.hh"
#include "workloads/workload.hh"

namespace
{

const char *const kUsage =
    "usage: trace_record <profile> <out.beartrace> [--refs N]\n"
    "                    [--cores N] [--seed S]\n"
    "       trace_record --selftest\n"
    "  <profile>  a Table 2 benchmark name (e.g. mcf, libquantum)\n"
    "  --refs     references per core (default: BEAR_WARMUP +\n"
    "             BEAR_MEASURE, one full run)\n"
    "  --cores    recorded streams (default 8)\n"
    "  --seed     base seed (default 0x5EED); core c uses\n"
    "             seed + 0x1000*(c+1), matching the sim runner\n";

int
record(const std::string &profile_name, const std::string &out_path,
       std::uint64_t refs_per_core, std::uint32_t cores,
       std::uint64_t seed, double scale)
{
    const bear::WorkloadProfile &profile =
        bear::profileByName(profile_name);

    bear::trace::TraceMeta meta;
    meta.workload = profile.name;
    meta.seed = seed;
    meta.coreCount = cores;
    auto created = bear::trace::TraceWriter::create(out_path, meta);
    if (!created.hasValue()) {
        std::fprintf(stderr, "trace_record: %s\n",
                     created.error().message().c_str());
        return 1;
    }
    bear::trace::TraceWriter writer = std::move(created.value());

    for (std::uint32_t c = 0; c < cores; ++c) {
        bear::WorkloadStream stream(profile, seed + 0x1000 * (c + 1),
                                    scale);
        for (std::uint64_t i = 0; i < refs_per_core; ++i) {
            auto appended = writer.append(c, stream.next());
            if (!appended.hasValue()) {
                std::fprintf(stderr, "trace_record: %s\n",
                             appended.error().message().c_str());
                return 1;
            }
        }
    }

    auto finished = writer.finish();
    if (!finished.hasValue()) {
        std::fprintf(stderr, "trace_record: %s\n",
                     finished.error().message().c_str());
        return 1;
    }
    std::printf("recorded %llu references (%u cores x %llu) of %s "
                "to %s\n",
                static_cast<unsigned long long>(*finished), cores,
                static_cast<unsigned long long>(refs_per_core),
                profile.name.c_str(), out_path.c_str());
    return 0;
}

int
selftest()
{
    const bear::tools::TempFile temp("beartrace-selftest");
    if (!temp.valid()) {
        std::fprintf(stderr, "selftest: mkstemp failed\n");
        return 1;
    }
    const std::string &path = temp.path();

    constexpr std::uint32_t kCores = 2;
    constexpr std::uint64_t kRefs = 500;
    int rc = record("mcf", path, kRefs, kCores, 42, 0.0625);
    if (rc == 0) {
        auto opened = bear::trace::TraceReader::open(path);
        if (!opened.hasValue()) {
            std::fprintf(stderr, "selftest: reopen failed: %s\n",
                         opened.error().message().c_str());
            rc = 1;
        } else {
            bear::trace::TraceReader reader =
                std::move(opened.value());
            std::uint64_t records = 0;
            for (;;) {
                bear::MemRef ref;
                bear::CoreId core = 0;
                auto r = reader.next(&ref, &core);
                if (!r.hasValue()) {
                    std::fprintf(stderr, "selftest: decode failed: "
                                         "%s\n",
                                 r.error().message().c_str());
                    rc = 1;
                    break;
                }
                if (!*r)
                    break;
                ++records;
            }
            if (rc == 0 && records != kCores * kRefs) {
                std::fprintf(stderr,
                             "selftest: FAILED: read %llu of %llu "
                             "records\n",
                             static_cast<unsigned long long>(records),
                             static_cast<unsigned long long>(
                                 kCores * kRefs));
                rc = 1;
            }
        }
    }
    if (rc == 0)
        std::printf("selftest passed\n");
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    const bear::tools::ToolArgs args(
        argc, argv, {"refs", "cores", "seed"}, kUsage);
    if (args.selftest())
        return selftest();
    if (args.positional().size() != 2)
        args.fail("expected <profile> and <out.beartrace>");

    const bear::RunnerOptions options = bear::RunnerOptions::fromEnv();
    const std::uint64_t refs = args.u64Or(
        "refs",
        options.warmupRefsPerCore + options.measureRefsPerCore);
    const auto cores = static_cast<std::uint32_t>(
        args.u64Or("cores", options.cores));
    const std::uint64_t seed = args.u64Or("seed", options.seed);
    if (refs == 0 || cores == 0)
        args.fail("--refs and --cores must be positive");

    return record(args.positional()[0], args.positional()[1], refs,
                  cores, seed, options.scale);
}
