/**
 * @file
 * Inspect a .beartrace file: header, per-core totals, first records.
 *
 *   trace_dump <file.beartrace> [--records N]
 *   trace_dump --selftest
 *
 * Prints the header metadata (workload, seed, cores, record count,
 * format version), decodes the whole file to per-core record counts
 * and reference statistics (reads/writes/dependent loads), and shows
 * the first N decoded records (default 8).  Because it decodes every
 * chunk, a successful dump doubles as an integrity check: bad CRCs,
 * truncation and version mismatches come back as the same TraceError
 * diagnostics the replay path would raise.
 *
 * The self-test writes a small trace to a temporary file, dumps it,
 * and then verifies the three corruption contracts on mutated copies
 * (flipped payload byte → bad-crc, truncated tail → truncated, bumped
 * version byte → bad-version), so CI proves corrupted traces are
 * rejected loudly without a single real workload file.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "tools/tool_args.hh"
#include "trace/trace_reader.hh"
#include "trace/trace_writer.hh"
#include "workloads/workload.hh"

namespace
{

const char *const kUsage =
    "usage: trace_dump <file.beartrace> [--records N]\n"
    "       trace_dump --selftest\n"
    "  --records  decoded records to print (default 8)\n";

int
dump(const std::string &path, std::uint64_t show_records)
{
    auto opened = bear::trace::TraceReader::open(path);
    if (!opened.hasValue()) {
        std::fprintf(stderr, "trace_dump: %s: %s\n", path.c_str(),
                     opened.error().message().c_str());
        return 1;
    }
    bear::trace::TraceReader reader = std::move(opened.value());
    const bear::trace::TraceMeta &meta = reader.meta();

    std::printf("%s\n", path.c_str());
    std::printf("  format    v%u\n", bear::trace::kFormatVersion);
    std::printf("  workload  %s\n", meta.workload.c_str());
    std::printf("  seed      0x%llX\n",
                static_cast<unsigned long long>(meta.seed));
    std::printf("  cores     %u\n", meta.coreCount);
    std::printf("  records   %llu\n",
                static_cast<unsigned long long>(meta.recordCount));

    std::vector<std::uint64_t> per_core(meta.coreCount, 0);
    std::uint64_t writes = 0;
    std::uint64_t dependents = 0;
    std::uint64_t shown = 0;
    for (;;) {
        bear::MemRef ref;
        bear::CoreId core = 0;
        auto r = reader.next(&ref, &core);
        if (!r.hasValue()) {
            std::fprintf(stderr, "trace_dump: %s: %s\n", path.c_str(),
                         r.error().message().c_str());
            return 1;
        }
        if (!*r)
            break;
        ++per_core[core];
        writes += ref.isWrite ? 1 : 0;
        dependents += ref.dependent ? 1 : 0;
        if (shown < show_records) {
            std::printf("  [%llu] core %u vaddr=0x%llX pc=0x%llX "
                        "gap=%u%s%s\n",
                        static_cast<unsigned long long>(shown), core,
                        static_cast<unsigned long long>(ref.vaddr),
                        static_cast<unsigned long long>(ref.pc),
                        ref.instGap, ref.isWrite ? " write" : " read",
                        ref.dependent ? " dependent" : "");
            ++shown;
        }
    }

    std::uint64_t total = 0;
    for (bear::CoreId c = 0; c < meta.coreCount; ++c) {
        std::printf("  core %u: %llu records\n", c,
                    static_cast<unsigned long long>(per_core[c]));
        total += per_core[c];
    }
    std::printf("  %llu records in %llu chunks; %.1f%% writes, "
                "%.1f%% dependent loads\n",
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(reader.chunksSeen()),
                total ? 100.0 * static_cast<double>(writes)
                        / static_cast<double>(total)
                      : 0.0,
                total ? 100.0 * static_cast<double>(dependents)
                        / static_cast<double>(total)
                      : 0.0);
    return 0;
}

/** Byte-level mutations for the corruption self-tests. */
std::vector<char>
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

void
spit(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

/** Expect open+full decode of @p path to fail with @p kind. */
bool
expectRejected(const std::string &path, bear::trace::TraceErrorKind kind,
               const char *what)
{
    auto opened = bear::trace::TraceReader::open(path);
    if (!opened.hasValue()) {
        if (opened.error().kind == kind)
            return true;
        std::fprintf(stderr,
                     "selftest: FAILED: %s rejected as %s, wanted "
                     "%s\n",
                     what,
                     traceErrorKindName(opened.error().kind),
                     traceErrorKindName(kind));
        return false;
    }
    bear::trace::TraceReader reader = std::move(opened.value());
    for (;;) {
        bear::MemRef ref;
        bear::CoreId core = 0;
        auto r = reader.next(&ref, &core);
        if (!r.hasValue()) {
            if (r.error().kind == kind)
                return true;
            std::fprintf(stderr,
                         "selftest: FAILED: %s rejected as %s, "
                         "wanted %s\n",
                         what, traceErrorKindName(r.error().kind),
                         traceErrorKindName(kind));
            return false;
        }
        if (!*r)
            break;
    }
    std::fprintf(stderr, "selftest: FAILED: %s was accepted\n", what);
    return false;
}

int
selftest()
{
    const bear::tools::TempFile temp("beartrace-dump-selftest");
    const bear::tools::TempFile mutatedTemp("beartrace-dump-mut");
    if (!temp.valid() || !mutatedTemp.valid()) {
        std::fprintf(stderr, "selftest: mkstemp failed\n");
        return 1;
    }
    const std::string &path = temp.path();

    bool ok = true;
    {
        bear::trace::TraceMeta meta;
        meta.workload = "selftest";
        meta.seed = 7;
        meta.coreCount = 2;
        auto created = bear::trace::TraceWriter::create(path, meta);
        if (!created.hasValue()) {
            std::fprintf(stderr, "selftest: %s\n",
                         created.error().message().c_str());
            return 1;
        }
        bear::trace::TraceWriter writer = std::move(created.value());
        for (bear::CoreId core = 0; core < 2; ++core) {
            bear::WorkloadStream stream(
                bear::profileByName("libquantum"), 11 + core, 0.0625);
            for (int i = 0; i < 300; ++i) {
                auto appended = writer.append(core, stream.next());
                if (!appended.hasValue()) {
                    std::fprintf(stderr, "selftest: %s\n",
                                 appended.error().message().c_str());
                    return 1;
                }
            }
        }
        ok = writer.finish().hasValue() && ok;
    }

    ok = dump(path, 4) == 0 && ok;

    const std::vector<char> pristine = slurp(path);
    const std::string &mutated = mutatedTemp.path();

    // Flip one payload byte: the chunk CRC must catch it.
    std::vector<char> flipped = pristine;
    flipped[flipped.size() / 2] =
        static_cast<char>(flipped[flipped.size() / 2] ^ 0x40);
    spit(mutated, flipped);
    ok = expectRejected(mutated, bear::trace::TraceErrorKind::BadCrc,
                        "flipped payload byte")
        && ok;

    // Cut the file mid-chunk: truncation must be named, not crash.
    std::vector<char> cut(pristine.begin(),
                          pristine.end() - pristine.size() / 4);
    spit(mutated, cut);
    ok = expectRejected(mutated, bear::trace::TraceErrorKind::Truncated,
                        "truncated file")
        && ok;

    // Bump the version field (and its CRC shield goes stale too, so
    // patch the header checksum to isolate the version check).
    std::vector<char> versioned = pristine;
    versioned[8] = static_cast<char>(versioned[8] + 1);
    const std::size_t name_len = static_cast<unsigned char>(
        versioned[bear::trace::kHeaderFixedBytes - 1]);
    const std::size_t crc_at =
        bear::trace::kHeaderFixedBytes + name_len;
    const std::uint32_t patched = bear::trace::crc32(
        versioned.data(), crc_at);
    for (int byte = 0; byte < 4; ++byte)
        versioned[crc_at + static_cast<std::size_t>(byte)] =
            static_cast<char>(patched >> (8 * byte));
    spit(mutated, versioned);
    ok = expectRejected(mutated,
                        bear::trace::TraceErrorKind::BadVersion,
                        "future format version")
        && ok;

    if (ok) {
        std::printf("selftest passed\n");
        return 0;
    }
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const bear::tools::ToolArgs args(argc, argv, {"records"}, kUsage);
    if (args.selftest())
        return selftest();
    return dump(args.inputPath(), args.u64Or("records", 8));
}
