#!/usr/bin/env bash
# Full verification pipeline:
#
#   1. tier-1: default build, whole test suite
#   2. observability smoke: trace_stats selftest plus a short traced
#      run whose report must round-trip through the analyzer
#   3. trace round-trip smoke: record a workload to a .beartrace
#      file, dump it (full decode = integrity check), replay it, and
#      diff the live and replayed JSON reports byte for byte
#   4. sanitizers: rebuild and rerun the suite under ASan+UBSan
#      (any report is fatal: -fno-sanitize-recover=all)
#   5. chaos smoke (DESIGN.md §11, under the sanitizer build): a
#      fault-injected nine-design sweep must exit 3 with a partial
#      report and a journal of the completed cells; resuming against
#      that journal must finish cleanly with a JSON report
#      byte-identical to an unfaulted run's
#   6. ThreadSanitizer: rebuild with BEAR_SANITIZE=thread and drive
#      the worker pool hard (BEAR_WORKERS=4 fig12 sweep) plus the
#      chaos faulted->resume contract, so the lock discipline that
#      clang's static analysis proves on paper is also checked under
#      real interleavings
#   7. static analysis: tools/lint.sh (bearlint always; clang-tidy
#      skipped when absent)
#   8. strict thread-safety build: clang with -Wthread-safety
#      -Werror=thread-safety-analysis over the whole tree (skipped
#      with a notice when clang++ is absent)
#   9. benchmarks (DESIGN.md §14): Release build, run the micro and
#      fig12 harnesses, refresh BENCH_micro.json / BENCH_fig12.json
#      at the repo root and fail on malformed or empty output; then
#      bench_gate compares the fresh micro snapshot against the
#      committed baseline and fails on a >25% nsPerOp regression of
#      any benchmark present in both
#  10. serve smoke (DESIGN.md §16, under the sanitizer build): beard
#      serves a recorded mcf trace to 8 concurrent bearload tenants;
#      the served report must diff clean against beard --offline on
#      the same trace, and SIGTERM must drain the daemon to exit 130
#  11. chaos serve (DESIGN.md §17, under the sanitizer build): the
#      chaos_serve soak plus a fault-injected beard serving 16
#      bearload tenants in chaos mode — healthy tenants must stay
#      byte-identical to the unfaulted offline reference, faulted
#      tenants must receive structured attributed Error frames, and
#      SIGTERM landing mid-chaos must still drain the daemon to 130
#
#   tools/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

echo "=== [1/11] tier-1 build + tests"
cmake -B build -S . >/dev/null
cmake --build build -j "${jobs}"
ctest --test-dir build --output-on-failure -j "${jobs}"

echo "=== [2/11] observability smoke (trace_stats + traced run)"
build/tools/trace_stats --selftest
report="$(mktemp)"
workdir="$(mktemp -d)"
trap 'rm -f "${report}"; rm -rf "${workdir}"' EXIT
BEAR_JSON="${report}" BEAR_TRACE=1024 BEAR_WARMUP=10000 \
    BEAR_MEASURE=5000 build/examples/latency_profile mcf BEAR >/dev/null
build/tools/trace_stats "${report}" >/dev/null

echo "=== [3/11] trace round-trip smoke (record, dump, replay, diff)"
trace="${workdir}/mcf.beartrace"
BEAR_WARMUP=10000 BEAR_MEASURE=5000 \
    build/tools/trace_record mcf "${trace}" >/dev/null
build/tools/trace_dump "${trace}" --records 4 >/dev/null
BEAR_JSON="${workdir}/live.jsonl" BEAR_WARMUP=10000 BEAR_MEASURE=5000 \
    build/examples/latency_profile mcf BEAR >/dev/null
BEAR_JSON="${workdir}/replay.jsonl" BEAR_WARMUP=10000 \
    BEAR_MEASURE=5000 BEAR_TRACE_IN="${trace}" \
    build/examples/latency_profile mcf BEAR >/dev/null
# The replayed report must be byte-identical to the live one.
diff "${workdir}/live.jsonl" "${workdir}/replay.jsonl"

echo "=== [4/11] ASan+UBSan build + tests"
cmake -B build-san -S . -DBEAR_SANITIZE=address,undefined >/dev/null
cmake --build build-san -j "${jobs}"
ctest --test-dir build-san --output-on-failure -j "${jobs}"

echo "=== [5/11] chaos smoke (faulted sweep -> partial -> resume)"
chaos_env=(BEAR_WARMUP=10000 BEAR_MEASURE=5000)
journal="${workdir}/chaos.journal"

# Reference: unfaulted sweep, exit 0, clean report.
env "${chaos_env[@]}" BEAR_JSON="${workdir}/chaos-clean.jsonl" \
    build-san/tools/chaos_sweep >/dev/null

# Faulted sweep: ~30% of measurement phases throw.  The sweep must
# survive (partial report, exit 3) and journal every completed cell.
rc=0
env "${chaos_env[@]}" BEAR_FAULT='throw@job.measure:p=0.3' \
    BEAR_JOURNAL="${journal}" \
    BEAR_JSON="${workdir}/chaos-partial.jsonl" \
    build-san/tools/chaos_sweep >/dev/null 2>&1 || rc=$?
if [[ "${rc}" -ne 3 ]]; then
    echo "chaos: faulted sweep exited ${rc}, expected 3 (partial)" >&2
    exit 1
fi
grep -q '"failures"' "${workdir}/chaos-partial.jsonl" || {
    echo "chaos: partial report carries no failures array" >&2
    exit 1
}

# Resume: only failed/missing cells re-execute; the completed report
# must be byte-identical to the unfaulted run's.
env "${chaos_env[@]}" BEAR_JOURNAL="${journal}" \
    BEAR_JSON="${workdir}/chaos-final.jsonl" \
    build-san/tools/chaos_sweep >/dev/null
diff "${workdir}/chaos-clean.jsonl" "${workdir}/chaos-final.jsonl"

echo "=== [6/11] ThreadSanitizer (threaded sweep + chaos contract)"
cmake -B build-tsan -S . -DBEAR_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${jobs}"
# Drive the worker pool with real contention: every design of the
# overall sweep across four workers.  Any data race aborts the run
# (-fno-sanitize-recover=all).
BEAR_WORKERS=4 BEAR_WARMUP=2000 BEAR_MEASURE=1000 \
    BEAR_JSON="${workdir}/tsan-fig12.jsonl" \
    build-tsan/bench/fig12_overall >/dev/null
# The chaos contract must hold under TSan too: faulted sweep exits 3,
# the resume against its journal completes cleanly.
rc=0
BEAR_WORKERS=4 BEAR_WARMUP=2000 BEAR_MEASURE=1000 \
    BEAR_FAULT='throw@job.measure:p=0.3' \
    BEAR_JOURNAL="${workdir}/tsan-chaos.journal" \
    BEAR_JSON="${workdir}/tsan-chaos-partial.jsonl" \
    build-tsan/tools/chaos_sweep >/dev/null 2>&1 || rc=$?
if [[ "${rc}" -ne 3 ]]; then
    echo "tsan chaos: faulted sweep exited ${rc}, expected 3" >&2
    exit 1
fi
BEAR_WORKERS=4 BEAR_WARMUP=2000 BEAR_MEASURE=1000 \
    BEAR_JOURNAL="${workdir}/tsan-chaos.journal" \
    BEAR_JSON="${workdir}/tsan-chaos-final.jsonl" \
    build-tsan/tools/chaos_sweep >/dev/null

echo "=== [7/11] static analysis (bearlint + clang-tidy)"
tools/lint.sh build

echo "=== [8/11] strict thread-safety build (clang)"
if command -v clang++ >/dev/null 2>&1; then
    cmake -B build-strict -S . -DCMAKE_CXX_COMPILER=clang++ \
        -DBEAR_STRICT_WARNINGS=ON >/dev/null
    cmake --build build-strict -j "${jobs}"
else
    echo "clang++ not found; skipping the -Werror=thread-safety" \
         "-analysis build" >&2
fi

echo "=== [9/11] benchmark snapshots (Release micro + fig12)"
cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-rel -j "${jobs}"
# Stash the committed micro snapshot before the bench run overwrites
# it: it is the baseline the regression gate compares against.
if [[ -s BENCH_micro.json ]]; then
    cp BENCH_micro.json "${workdir}/micro-baseline.json"
fi
# Each harness self-validates (re-parses its own JSON before exit 0);
# the checks below additionally pin the schema tags and non-emptiness
# so a truncated file can never be mistaken for a snapshot.
build-rel/bench/micro_structures --benchmark_min_time=0.2 \
    > "${workdir}/micro.log"
build-rel/bench/perf_baseline > "${workdir}/fig12.log"
for f in BENCH_micro.json BENCH_fig12.json; do
    [[ -s "${f}" ]] || { echo "bench: ${f} missing or empty" >&2; exit 1; }
done
grep -q '"schema":"bear-bench-micro-v1"' BENCH_micro.json || {
    echo "bench: BENCH_micro.json lacks its schema tag" >&2
    exit 1
}
grep -q '"schema":"bear-bench-fig12-v1"' BENCH_fig12.json || {
    echo "bench: BENCH_fig12.json lacks its schema tag" >&2
    exit 1
}
grep -q 'BM_TagStoreProbe' BENCH_micro.json || {
    echo "bench: BENCH_micro.json is missing the TagStore benches" >&2
    exit 1
}
grep -q '"refsPerSec"' BENCH_fig12.json || {
    echo "bench: BENCH_fig12.json carries no refs/sec" >&2
    exit 1
}
# Perf-regression gate: any benchmark present in both the committed
# baseline and the fresh run may not be more than 25% slower.  A
# first-ever run (no committed snapshot) skips with a notice.
build-rel/tools/bench_gate --selftest
if [[ -s "${workdir}/micro-baseline.json" ]]; then
    build-rel/tools/bench_gate "${workdir}/micro-baseline.json" \
        BENCH_micro.json --threshold 25
else
    echo "bench: no committed BENCH_micro.json baseline; gate skipped"
fi

echo "=== [10/11] serve smoke under ASan/UBSan (beard + bearload)"
serve_trace="${workdir}/serve-mcf.beartrace"
serve_sock="${workdir}/beard.sock"
serve_env=(BEAR_WARMUP=4000 BEAR_MEASURE=2000 BEAR_SCALE=0.015625)
env "${serve_env[@]}" build-san/tools/trace_record mcf \
    "${serve_trace}" --refs 6000 --cores 4 >/dev/null
env "${serve_env[@]}" build-san/tools/beard --socket "${serve_sock}" \
    --shards 2 --queue 2 >"${workdir}/beard.log" 2>&1 &
beard_pid=$!
for _ in $(seq 1 100); do
    [[ -S "${serve_sock}" ]] && break
    sleep 0.1
done
[[ -S "${serve_sock}" ]] || {
    echo "serve: beard never bound ${serve_sock}" >&2
    cat "${workdir}/beard.log" >&2
    exit 1
}
# Eight concurrent tenants against 2 shards x 2 queue slots: every
# session must complete and every report must be identical.
build-san/tools/bearload "${serve_sock}" "${serve_trace}" \
    --tenants 8 --report "${workdir}/served.json"
env "${serve_env[@]}" build-san/tools/beard --offline "${serve_trace}" \
    > "${workdir}/offline.json"
# The served report must be byte-identical to the offline replay's.
diff "${workdir}/served.json" "${workdir}/offline.json"
# SIGTERM drains in-flight tenants and exits 130, mirroring the
# runner's interrupt contract.
kill -TERM "${beard_pid}"
rc=0
wait "${beard_pid}" || rc=$?
if [[ "${rc}" -ne 130 ]]; then
    echo "serve: beard drained with exit ${rc}, expected 130" >&2
    cat "${workdir}/beard.log" >&2
    exit 1
fi

echo "=== [11/11] chaos serve under ASan/UBSan (fault injection)"
# In-process soak first: concurrent tenant waves against injected
# serve.* faults.  chaos_serve itself asserts the PR 10 invariant —
# healthy tenants byte-identical to the offline reference, faulted
# tenants handed structured attributed Error frames, at least one
# fault actually fired, and a drain arriving mid-chaos exits 130.
build-san/tools/chaos_serve --tenants 16 --rounds 2 >/dev/null

# Then the real daemon: beard restarted with BEAR_FAULT naming
# serve.* sites, 16 bearload tenants in chaos mode.  The healthy
# tenants' shared report must still equal the unfaulted offline
# reference computed in step 10.
chaos_sock="${workdir}/beard-chaos.sock"
env "${serve_env[@]}" BEAR_SEED=48879 \
    BEAR_FAULT='panic@serve.job.run:p=0.25,alloc@serve.decode:p=0.15' \
    build-san/tools/beard --socket "${chaos_sock}" \
    --shards 2 --queue 16 >"${workdir}/beard-chaos.log" 2>&1 &
chaos_pid=$!
for _ in $(seq 1 100); do
    [[ -S "${chaos_sock}" ]] && break
    sleep 0.1
done
[[ -S "${chaos_sock}" ]] || {
    echo "chaos serve: beard never bound ${chaos_sock}" >&2
    cat "${workdir}/beard-chaos.log" >&2
    exit 1
}
build-san/tools/bearload "${chaos_sock}" "${serve_trace}" \
    --tenants 16 --tolerate-faults 1 \
    --report "${workdir}/chaos-served.json"
diff "${workdir}/chaos-served.json" "${workdir}/offline.json"
# SIGTERM mid-chaos: land the drain while a second tenant wave is
# still in flight; the daemon must still exit 130, and the wave's
# stragglers must hear Draining, not a hangup (tolerated above).
build-san/tools/bearload "${chaos_sock}" "${serve_trace}" \
    --tenants 8 --tolerate-faults 1 >/dev/null 2>&1 &
wave_pid=$!
sleep 0.3
kill -TERM "${chaos_pid}"
rc=0
wait "${chaos_pid}" || rc=$?
wait "${wave_pid}" || true
if [[ "${rc}" -ne 130 ]]; then
    echo "chaos serve: beard drained with exit ${rc}, expected 130" >&2
    cat "${workdir}/beard-chaos.log" >&2
    exit 1
fi

echo "=== CI OK"
