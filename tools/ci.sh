#!/usr/bin/env bash
# Full verification pipeline:
#
#   1. tier-1: default build, whole test suite
#   2. sanitizers: rebuild and rerun the suite under ASan+UBSan
#      (any report is fatal: -fno-sanitize-recover=all)
#   3. static analysis: tools/lint.sh (skipped when clang-tidy absent)
#
#   tools/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

echo "=== [1/3] tier-1 build + tests"
cmake -B build -S . >/dev/null
cmake --build build -j "${jobs}"
ctest --test-dir build --output-on-failure -j "${jobs}"

echo "=== [2/3] ASan+UBSan build + tests"
cmake -B build-san -S . -DBEAR_SANITIZE=address,undefined >/dev/null
cmake --build build-san -j "${jobs}"
ctest --test-dir build-san --output-on-failure -j "${jobs}"

echo "=== [3/3] clang-tidy"
tools/lint.sh build

echo "=== CI OK"
