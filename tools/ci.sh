#!/usr/bin/env bash
# Full verification pipeline:
#
#   1. tier-1: default build, whole test suite
#   2. observability smoke: trace_stats selftest plus a short traced
#      run whose report must round-trip through the analyzer
#   3. sanitizers: rebuild and rerun the suite under ASan+UBSan
#      (any report is fatal: -fno-sanitize-recover=all)
#   4. static analysis: tools/lint.sh (skipped when clang-tidy absent)
#
#   tools/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

echo "=== [1/4] tier-1 build + tests"
cmake -B build -S . >/dev/null
cmake --build build -j "${jobs}"
ctest --test-dir build --output-on-failure -j "${jobs}"

echo "=== [2/4] observability smoke (trace_stats + traced run)"
build/tools/trace_stats --selftest
report="$(mktemp)"
trap 'rm -f "${report}"' EXIT
BEAR_JSON="${report}" BEAR_TRACE=1024 BEAR_WARMUP=10000 \
    BEAR_MEASURE=5000 build/examples/latency_profile mcf BEAR >/dev/null
build/tools/trace_stats "${report}" >/dev/null

echo "=== [3/4] ASan+UBSan build + tests"
cmake -B build-san -S . -DBEAR_SANITIZE=address,undefined >/dev/null
cmake --build build-san -j "${jobs}"
ctest --test-dir build-san --output-on-failure -j "${jobs}"

echo "=== [4/4] clang-tidy"
tools/lint.sh build

echo "=== CI OK"
