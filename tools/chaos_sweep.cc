/**
 * @file
 * Chaos-smoke driver for tools/ci.sh (DESIGN.md §11): a nine-design
 * sweep (baseline Alloy plus eight configurations) over a small mixed
 * workload set, built to be run three times:
 *
 *   1. clean                      -> exit 0, reference JSON report
 *   2. with BEAR_FAULT + journal  -> exit 3, partial report, journal
 *                                    holds every completed cell
 *   3. with the journal, no fault -> exit 0, report byte-identical
 *                                    to the clean run's
 *
 * The binary itself is just the sweep; the fault spec, journal path
 * and JSON sink all arrive through the environment, so the CI script
 * (or a hand-driven chaos session) owns the scenario.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace bear;
using namespace bear::bench;

int
main()
{
    RunnerOptions options = RunnerOptions::fromEnv();
    Runner runner(options);
    printExperimentHeader(
        "chaos_sweep", "Nine-design resilience smoke sweep",
        "faulted sweeps stay partial, resumed sweeps finish "
        "byte-identical (DESIGN.md §11)",
        options);

    // Three rate workloads and one mix keep the sweep quick while
    // still exercising the IPC_alone path; nine designs spread the
    // cells across every cache organisation the simulator models.
    std::vector<RunJob> jobs;
    for (const char *name : {"wrf", "mcf", "libquantum"}) {
        RunJob job;
        job.rateBenchmark = name;
        jobs.push_back(job);
    }
    RunJob mix;
    mix.mix = &tableThreeMixes().front();
    jobs.push_back(mix);

    const Comparison cmp = compareDesigns(
        runner, jobs, DesignKind::Alloy,
        {DesignKind::ProbBypass50, DesignKind::ProbBypass90,
         DesignKind::Bab, DesignKind::BabDcp, DesignKind::Bear,
         DesignKind::LohHill, DesignKind::TagsInSram,
         DesignKind::BwOptimized});
    printSpeedupTable(cmp);
    return exitStatus(cmp);
}
