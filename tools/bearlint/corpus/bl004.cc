// Golden corpus: BL004 nondeterminism.
#include <cstdlib>

namespace std
{
struct random_device
{
    unsigned operator()() { return 0u; }
};
namespace chrono
{
struct system_clock
{
};
} // namespace chrono
} // namespace std

unsigned
draw()
{
    std::random_device rd;              // line 21: banned type
    unsigned a = rd();
    unsigned b = static_cast<unsigned>(rand()); // line 23: banned call
    srand(7);                           // line 24: banned call
    using Clock = std::chrono::system_clock; // line 25: banned type
    (void)sizeof(Clock);

    // Not violations: our own members named like banned calls.
    struct Gen
    {
        unsigned rand() { return 4; }
    } gen;
    unsigned c = gen.rand();
    return a + b + c;
}
