// Golden corpus: BL005 — guard does not match BEAR_*_HH, and a
// header-scope `using namespace`.
#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H

namespace corpus
{
int five();
}

using namespace corpus; // line 11: using-namespace in a header

#endif // WRONG_GUARD_H
