// Golden corpus: the PR 10 temptations.  A chaos/soak harness wants
// to hand-roll a slow-loris client (raw socket + drip-fed send) and
// coordinate its tenant waves with a naked std::mutex — exactly the
// code test_serve.cc must NOT contain.  The sanctioned seams are
// serve::Channel (sendRaw lives in src/serve, where BL008 permits
// sockets) and common/lock.hh's Mutex/CondVar wrappers.

#include <mutex> // line 8: banned include (BL003)

extern "C" {
int socket(int, int, int);
int connect(int, const void *, unsigned);
long send(int, const void *, unsigned long, int);
int setsockopt(int, int, int, const void *, unsigned);
int close(int);
}

struct WaveGate
{
    std::mutex m; // line 20: naked std::mutex (BL003)
};

int
dripFeedTenant(WaveGate &gate)
{
    std::lock_guard<std::mutex> hold(gate.m); // line 26: BL003
    const int fd = socket(1, 1, 0);           // line 27: BL008
    ::connect(fd, nullptr, 0);                // line 28: BL008
    setsockopt(fd, 1, 20, nullptr, 0);        // line 29: BL008
    const char byte = 0x42;
    for (int i = 0; i < 64; ++i)
        send(fd, &byte, 1, 0);                // line 32: BL008
    return close(fd);
}
