// Golden corpus: BL003 naked-mutex.
#include <mutex>               // line 2: banned include
#include <condition_variable>  // line 3: banned include
#include <shared_mutex>        // line 4: banned include

struct Uses
{
    std::mutex m;              // line 8: naked std::mutex
    std::condition_variable c; // line 9: naked std::condition_variable
    std::once_flag once;       // line 10: naked std::once_flag
};

void
lockIt(Uses &u)
{
    std::lock_guard<std::mutex> g(u.m); // line 16: two diagnostics
    (void)g;
}
