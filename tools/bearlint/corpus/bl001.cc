// Golden corpus: BL001 discarded-expected.
// The selftest scans only this directory, so the Expected machinery
// is declared locally; only names and shapes matter to the analyzer.

template <typename T, typename E>
class Expected
{
};

using RunOutcome = Expected<int, int>;

struct Journal
{
    Expected<bool, int> appendResult(int key);
    static Expected<Journal, int> openOrCreate(const char *path);
};

Expected<int, int> tryRun(int job);
RunOutcome tryRunAliased(int job);

void
useSites(Journal &journal, Journal *pj)
{
    tryRun(1);                          // line 24: discarded
    journal.appendResult(2);            // line 25: discarded
    pj->appendResult(3);                // line 26: discarded
    Journal::openOrCreate("x");         // line 27: discarded
    tryRunAliased(4);                   // line 28: discarded

    if (true)
        tryRun(5);                      // line 31: discarded in if-body

    // Not violations: the result is consumed or explicitly dropped.
    auto ok = tryRun(6);
    (void)ok;
    (void)tryRun(7);
    auto j = Journal::openOrCreate("y");
    (void)j;
}

// A declaration of a same-named function is not a call.
Expected<int, int> tryRun(int job, int extra);
