// Golden corpus: BL005 — #pragma once instead of an include guard.
#pragma once

namespace corpus
{
int six();
}
