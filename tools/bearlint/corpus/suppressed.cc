// Golden corpus: every violation here carries a bearlint-allow
// marker, so no diagnostics are expected from this file.

template <typename T, typename E>
class Expected
{
};

Expected<int, int> trySupp(int job);

struct Q
{
    long count() const { return 0; }
};

long
suppressed(const Q &a, const Q &b)
{
    trySupp(1); // bearlint-allow(BL001)
    // bearlint-allow(BL001)
    trySupp(2);
    // bearlint-allow(BL002, BL001)
    long s = a.count() + b.count();
    return s;
}
