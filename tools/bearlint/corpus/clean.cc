// Golden corpus: a clean file — no diagnostics expected.  Exercises
// the lexer's corners: raw strings, char literals, comments that
// mention std::mutex and rand() without using them, and consumed
// Expected results.

template <typename T, typename E>
class Expected
{
};

using CleanOutcome = Expected<int, int>;

CleanOutcome tryClean(int job);

const char *kDoc = R"doc(
    std::mutex rand() system_clock  — inert inside a raw string,
    a.count() + b.count() too.
)doc";

int
consume()
{
    auto r = tryClean(1);
    (void)r;
    (void)tryClean(2);
    char quote = '\'';
    const char *s = "std::lock_guard<std::mutex> in a string";
    return quote + (s != nullptr ? 1 : 0);
}
