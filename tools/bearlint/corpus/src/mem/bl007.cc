// BL007 golden corpus: front/middle vector mutation in a hot-path
// directory.  The file never compiles as part of the build; it only
// exists for `bearlint --selftest`.

#include <vector>

struct Interval
{
    unsigned long start;
    unsigned long end;
};

struct Queue
{
    std::vector<Interval> busy_;

    void
    shifts()
    {
        busy_.erase(busy_.begin());                               // BL007
        busy_.erase(busy_.begin(), busy_.begin() + 4);            // BL007
        busy_.insert(busy_.begin() + 2, Interval{1, 2});          // BL007
        this->busy_.erase(this->busy_.cbegin());                  // BL007
    }

    void
    legal()
    {
        busy_.pop_back();                // tail mutation is O(1)
        busy_.push_back(Interval{3, 4}); // tail mutation is O(1)
        busy_.erase(busy_.end() - 1);    // no begin token involved
        // Suppressed: a deliberate, justified cold-path shift.
        busy_.erase(busy_.begin()); // bearlint-allow(BL007)
    }
};
