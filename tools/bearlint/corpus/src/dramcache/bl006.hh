#ifndef BEAR_TOOLS_BEARLINT_CORPUS_SRC_DRAMCACHE_BL006_HH
#define BEAR_TOOLS_BEARLINT_CORPUS_SRC_DRAMCACHE_BL006_HH

// BL006 golden corpus: hand-rolled tag layouts inside src/dramcache/.
// The struct with `tag` + `valid` and no `set` member is an AoS tag
// entry; vectors of it, and `lru_` shadow vectors, must be flagged.
// The NTC-style entry carries its own set index and stays legal.

#include <cstdint>
#include <vector>

namespace bear
{

struct Tad
{
    std::uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
};

struct NtcEntry
{
    std::uint64_t bank = 0;
    std::uint64_t setIndex = 0; // named away from `set` on purpose...
    std::uint64_t set = 0;      // ...and the real thing, which exempts
    std::uint64_t tag = 0;
    bool valid = false;
};

class PrivateLayout
{
  private:
    std::vector<Tad> tads_;          // BAD: AoS tag plane
    std::vector<NtcEntry> entries_;  // ok: set-indexed victim buffer
    std::vector<std::uint64_t> lru_; // BAD: shadow replacement vector
};

} // namespace bear

#endif // BEAR_TOOLS_BEARLINT_CORPUS_SRC_DRAMCACHE_BL006_HH
