// Golden corpus: src/serve/ is the sanctioned socket seam — the same
// calls bl008.cc flags produce no BL008 diagnostics here.

extern "C" {
int socket(int, int, int);
int listen(int, int);
long recv(int, void *, unsigned long, int);
}

int
serveHere()
{
    const int fd = socket(2, 1, 0);
    ::listen(fd, 8);
    char buf[8];
    return static_cast<int>(recv(fd, buf, sizeof(buf), 0));
}
