// Golden corpus: BL002 raw-unit-arith.

struct Bytes
{
    long count() const { return v; }
    long v = 0;
};

long
mix(const Bytes &a, const Bytes &b, const Bytes *pc)
{
    long bad1 = a.count() + b.count();  // line 12: additive on counts
    long bad2 = a.count() - 7;          // line 13: additive on counts
    long bad3 = 7 + pc->count();        // line 14: additive on counts

    // Not violations: comparisons, products, plain reads.
    long ok1 = a.count();
    bool ok2 = a.count() > b.count();
    long ok3 = a.count() * 2;
    return bad1 + bad2 + bad3 + ok1 + (ok2 ? 1 : 0) + ok3;
}
