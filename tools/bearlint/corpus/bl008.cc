// Golden corpus: BL008 raw socket / blocking I/O outside src/serve/.

extern "C" {
int socket(int, int, int);
int bind(int, const void *, unsigned);
int listen(int, int);
int accept(int, void *, unsigned *);
long recv(int, void *, unsigned long, int);
long send(int, const void *, unsigned long, int);
int poll(void *, unsigned long, int);
int close(int);
}

namespace util
{
template <typename F>
int
bind(F)
{
    return 0;
}
} // namespace util

int
serveRaw()
{
    const int fd = socket(2, 1, 0);                // line 27: violation
    bind(fd, nullptr, 0);                          // line 28: violation
    ::listen(fd, 8);                               // line 29: violation
    const int peer = accept(fd, nullptr, nullptr); // line 30: violation
    char buf[16];
    recv(peer, buf, sizeof(buf), 0);               // line 32: violation
    send(peer, buf, sizeof(buf), 0);               // line 33: violation
    poll(nullptr, 0, 100);                         // line 34: violation

    // Not violations: member syntax and qualified non-libc names.
    struct Endpoint
    {
        int connect() { return 0; }
        void shutdown() {}
    } ep;
    ep.connect();
    ep.shutdown();
    util::bind(3);
    return close(peer);
}
