/**
 * @file
 * bearlint — project-rule static analyzer (DESIGN.md §12).
 *
 * A self-contained lexical analyzer (no LLVM/clang dependency) that
 * enforces BEAR project rules clang-tidy cannot express.  It tokenizes
 * every C++ file under src/, tools/, bench/, tests/ and examples/ and
 * checks:
 *
 *   BL001 discarded-expected  a call to a function returning
 *         Expected<_,E> (or an alias like RunOutcome) whose result is
 *         dropped at statement level.  Complements the compiler's
 *         [[nodiscard]] warning: bearlint makes it a hard CI failure
 *         and also covers builds where warnings are not errors.
 *   BL002 raw-unit-arith      additive arithmetic on a shed unit
 *         count (`q.count() + ...`) outside the unit seams
 *         (common/units.hh, common/types.hh).  Same-dimension sums
 *         belong inside the strong types; a `+` on raw counts is how
 *         bytes and beats get mixed.
 *   BL003 naked-mutex         std::mutex / std::condition_variable /
 *         std::lock_guard family (incl. once_flag/call_once) outside
 *         common/sync.hh.  All locking goes through the
 *         capability-annotated wrappers so clang -Wthread-safety can
 *         prove the lock discipline.
 *   BL004 nondeterminism      wall-clock or ambient-randomness seams
 *         (rand, std::random_device, system_clock, gettimeofday, ...)
 *         outside the sanctioned sites (sim/runner.cc watchdog,
 *         common/fault.cc).  Everything else must draw from the
 *         seeded Rng so runs stay bit-for-bit reproducible.
 *   BL005 include-hygiene     headers must open with a matching
 *         `#ifndef BEAR_..._HH` / `#define` guard (no #pragma once)
 *         and must not contain `using namespace` at any scope.
 *   BL006 private-tag-array   a hand-rolled tag layout inside
 *         src/dramcache/: a `std::vector<S>` member where S is an
 *         AoS tag entry (has `tag` and `valid` members but no `set`
 *         member — the NTC's set-indexed Entry is exempt), or a
 *         shadow replacement vector named `lru_`.  All tag arrays go
 *         through the shared SoA TagStore (dramcache/tag_store.hh).
 *   BL007 hot-path-shift      `erase(... begin ...)` or
 *         `insert(... begin ...)` member calls inside src/mem/ or
 *         src/dramcache/ — a front/middle container mutation that
 *         memmoves the tail on the per-access timing path.  The O(1)
 *         channel-model port (DESIGN.md §15) removed every such
 *         shift; hot-path queues use circular indices instead.
 *   BL008 raw-socket-io       socket(2)-family and blocking-I/O
 *         calls (socket/bind/listen/accept/connect, the send and
 *         recv families, poll/select/epoll) outside src/serve/.  The
 *         serve layer
 *         owns every file descriptor and its error handling
 *         (DESIGN.md §16); a stray blocking recv elsewhere is an
 *         unkillable thread the drain logic cannot see.
 *
 * Diagnostics are machine-readable (`file:line: [BL###] message`) and
 * suppressible per line with `// bearlint-allow(BL###)` on the same
 * or the preceding line.  Exit codes: 0 clean, 1 violations found,
 * 2 usage error.  `--list-rules` prints the catalog; `--selftest DIR`
 * runs the golden violation corpus (tools/bearlint/corpus) and
 * verifies the exact diagnostic set.
 *
 * Being lexical, the analyzer is deliberately conservative: BL001
 * resolves callees by name (static factories are matched only behind
 * a `Class::` qualifier, so std::ofstream::open is never confused
 * with TraceReader::open), and anything it cannot prove discarded is
 * not reported.  The compiler-side [[nodiscard]] attribute remains
 * the ground truth; bearlint is the gate that keeps the tree at zero.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace
{

namespace fs = std::filesystem;

const char *const kUsage =
    "usage: bearlint [--root DIR] [path...]\n"
    "       bearlint --list-rules\n"
    "       bearlint --selftest CORPUS_DIR\n"
    "  Scans C++ sources (default paths: src tools bench tests\n"
    "  examples, relative to --root, default .) and reports project-\n"
    "  rule violations as `file:line: [BL###] message`.\n"
    "  Suppress one line with `// bearlint-allow(BL###)` on the same\n"
    "  or preceding line.  Exits 0 when clean, 1 on violations,\n"
    "  2 on usage errors.\n";

struct RuleInfo
{
    const char *id;
    const char *name;
    const char *summary;
};

const RuleInfo kRules[] = {
    {"BL001", "discarded-expected",
     "result of an Expected-returning call is silently dropped"},
    {"BL002", "raw-unit-arith",
     "additive arithmetic on a shed unit .count() outside "
     "common/units.hh / common/types.hh"},
    {"BL003", "naked-mutex",
     "std::mutex/condition_variable/lock_guard family outside "
     "common/sync.hh (use bear::Mutex/MutexLock/CondVar)"},
    {"BL004", "nondeterminism",
     "wall-clock or ambient randomness outside sim/runner.cc / "
     "common/fault.cc (use the seeded Rng)"},
    {"BL005", "include-hygiene",
     "header missing a BEAR_*_HH include guard, or `using "
     "namespace` in a header"},
    {"BL006", "private-tag-array",
     "hand-rolled tag vector / lru_ shadow vector in src/dramcache/ "
     "instead of the shared SoA TagStore (dramcache/tag_store.hh)"},
    {"BL007", "hot-path-shift",
     "erase/insert at begin() inside src/mem/ or src/dramcache/ "
     "(O(n) memmove per access; use a circular index / ring buffer)"},
    {"BL008", "raw-socket-io",
     "socket(2)-family / blocking-I/O call outside src/serve/ (the "
     "serve layer owns all socket descriptors; DESIGN.md §16)"},
};

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

/** One preprocessor directive (tokens are not emitted for these). */
struct PpLine
{
    int line = 0;
    std::string directive; ///< "include", "ifndef", "define", ...
    std::string rest;      ///< remainder of the logical line, trimmed
};

struct Token
{
    std::string text;
    int line = 0;
    char kind = 'p'; ///< i=ident n=number p=punct s=string c=char
};

struct FileData
{
    std::string display;      ///< path as reported in diagnostics
    bool isHeader = false;
    std::vector<Token> toks;
    std::vector<PpLine> pp;
    /** line -> rule ids allowed on that line. */
    std::map<int, std::set<std::string>> allows;
    int lines = 0;
};

bool
isIdentStart(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool
isIdentChar(char c)
{
    return isIdentStart(c) || (c >= '0' && c <= '9');
}

/** Record every bearlint-allow(BL###[,BL###...]) marker in @p text. */
void
recordAllows(FileData &fd, const std::string &text, int line)
{
    std::size_t pos = 0;
    while ((pos = text.find("bearlint-allow(", pos))
           != std::string::npos) {
        pos += std::strlen("bearlint-allow(");
        const std::size_t close = text.find(')', pos);
        if (close == std::string::npos)
            break;
        std::string ids = text.substr(pos, close - pos);
        std::size_t start = 0;
        while (start <= ids.size()) {
            std::size_t comma = ids.find(',', start);
            if (comma == std::string::npos)
                comma = ids.size();
            std::string id = ids.substr(start, comma - start);
            id.erase(std::remove(id.begin(), id.end(), ' '), id.end());
            if (!id.empty())
                fd.allows[line].insert(id);
            start = comma + 1;
        }
        pos = close;
    }
}

/** Tokenize @p src into @p fd (tokens, pp lines, allow markers). */
void
lex(const std::string &src, FileData &fd)
{
    const std::size_t n = src.size();
    std::size_t i = 0;
    int line = 1;
    bool atLineStart = true;

    auto push = [&](std::string text, char kind) {
        fd.toks.push_back(Token{std::move(text), line, kind});
        atLineStart = false;
    };

    while (i < n) {
        const char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            atLineStart = true;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r' || c == '\f'
            || c == '\v') {
            ++i;
            continue;
        }
        // Comments (and their suppression markers).
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            std::size_t end = src.find('\n', i);
            if (end == std::string::npos)
                end = n;
            recordAllows(fd, src.substr(i, end - i), line);
            i = end;
            continue;
        }
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            std::size_t j = i + 2;
            std::size_t lineBegin = i;
            while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
                if (src[j] == '\n') {
                    recordAllows(
                        fd, src.substr(lineBegin, j - lineBegin), line);
                    ++line;
                    lineBegin = j + 1;
                }
                ++j;
            }
            const std::size_t stop = (j + 1 < n) ? j + 2 : n;
            recordAllows(fd, src.substr(lineBegin, stop - lineBegin),
                         line);
            i = stop;
            continue;
        }
        // Preprocessor: a '#' first on its line swallows the logical
        // line (with backslash continuations); no tokens are emitted.
        if (c == '#' && atLineStart) {
            const int ppLineNo = line;
            std::size_t j = i + 1;
            std::string text;
            while (j < n) {
                if (src[j] == '\\' && j + 1 < n && src[j + 1] == '\n') {
                    ++line;
                    j += 2;
                    text += ' ';
                    continue;
                }
                if (src[j] == '\n')
                    break;
                text += src[j];
                ++j;
            }
            std::istringstream is(text);
            PpLine pp;
            pp.line = ppLineNo;
            is >> pp.directive;
            std::getline(is, pp.rest);
            const std::size_t first = pp.rest.find_first_not_of(" \t");
            pp.rest = first == std::string::npos
                ? std::string()
                : pp.rest.substr(first);
            fd.pp.push_back(std::move(pp));
            i = j;
            atLineStart = false;
            continue;
        }
        // String literals (incl. raw strings) and char literals.
        if (c == '"'
            || (c == 'R' && i + 1 < n && src[i + 1] == '"')) {
            if (c == 'R') {
                std::size_t d = i + 2;
                std::string delim;
                while (d < n && src[d] != '(')
                    delim += src[d++];
                const std::string closer = ")" + delim + "\"";
                std::size_t end = src.find(closer, d);
                if (end == std::string::npos)
                    end = n;
                else
                    end += closer.size();
                for (std::size_t k = i; k < end && k < n; ++k)
                    if (src[k] == '\n')
                        ++line;
                push("\"\"", 's');
                i = end;
                continue;
            }
            std::size_t j = i + 1;
            while (j < n && src[j] != '"') {
                if (src[j] == '\\')
                    ++j;
                else if (src[j] == '\n')
                    ++line; // unterminated; keep line count sane
                ++j;
            }
            push("\"\"", 's');
            i = (j < n) ? j + 1 : n;
            continue;
        }
        if (c == '\'' && !(i > 0 && (isIdentChar(src[i - 1])))) {
            std::size_t j = i + 1;
            while (j < n && src[j] != '\'') {
                if (src[j] == '\\')
                    ++j;
                ++j;
            }
            push("''", 'c');
            i = (j < n) ? j + 1 : n;
            continue;
        }
        // Identifiers and keywords.
        if (isIdentStart(c)) {
            std::size_t j = i + 1;
            while (j < n && isIdentChar(src[j]))
                ++j;
            push(src.substr(i, j - i), 'i');
            i = j;
            continue;
        }
        // Numbers (incl. digit separators and exponents).
        if (c >= '0' && c <= '9') {
            std::size_t j = i + 1;
            while (j < n
                   && (isIdentChar(src[j]) || src[j] == '\''
                       || src[j] == '.'
                       || ((src[j] == '+' || src[j] == '-') && j > 0
                           && (src[j - 1] == 'e' || src[j - 1] == 'E'
                               || src[j - 1] == 'p'
                               || src[j - 1] == 'P'))))
                ++j;
            push(src.substr(i, j - i), 'n');
            i = j;
            continue;
        }
        // Punctuation, longest match first.
        static const char *const kPunct3[] = {"<=>", "->*", "...",
                                              "<<=", ">>="};
        static const char *const kPunct2[] = {
            "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&",
            "||", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
            "++", "--"};
        bool matched = false;
        for (const char *p : kPunct3) {
            if (src.compare(i, 3, p) == 0) {
                push(p, 'p');
                i += 3;
                matched = true;
                break;
            }
        }
        if (matched)
            continue;
        for (const char *p : kPunct2) {
            if (src.compare(i, 2, p) == 0) {
                push(p, 'p');
                i += 2;
                matched = true;
                break;
            }
        }
        if (matched)
            continue;
        push(std::string(1, c), 'p');
        ++i;
    }
    fd.lines = line;
}

// ---------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------

struct Diag
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;

    bool
    operator<(const Diag &o) const
    {
        if (file != o.file)
            return file < o.file;
        if (line != o.line)
            return line < o.line;
        return rule < o.rule;
    }
};

class Reporter
{
  public:
    void
    report(const FileData &fd, int line, const char *rule,
           std::string message)
    {
        if (allowed(fd, line, rule))
            return;
        diags_.push_back(Diag{fd.display, line, rule,
                              std::move(message)});
    }

    const std::vector<Diag> &diags() const { return diags_; }

    void
    sortAndPrint()
    {
        std::sort(diags_.begin(), diags_.end());
        for (const Diag &d : diags_) {
            std::printf("%s:%d: [%s] %s\n", d.file.c_str(), d.line,
                        d.rule.c_str(), d.message.c_str());
        }
    }

  private:
    static bool
    allowed(const FileData &fd, int line, const char *rule)
    {
        for (const int l : {line, line - 1}) {
            const auto it = fd.allows.find(l);
            if (it != fd.allows.end()
                && it->second.find(rule) != it->second.end())
                return true;
        }
        return false;
    }

    std::vector<Diag> diags_;
};

// ---------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------

/** Index of the ')' matching the '(' at @p open; -1 when unmatched. */
long
matchForward(const std::vector<Token> &t, long open)
{
    long depth = 0;
    for (long i = open; i < static_cast<long>(t.size()); ++i) {
        if (t[i].text == "(")
            ++depth;
        else if (t[i].text == ")" && --depth == 0)
            return i;
    }
    return -1;
}

/** Index of the '(' or '[' matching the closer at @p close; -1. */
long
matchBackward(const std::vector<Token> &t, long close)
{
    const std::string &closer = t[close].text;
    const std::string opener = closer == ")" ? "(" : "[";
    long depth = 0;
    for (long i = close; i >= 0; --i) {
        if (t[i].text == closer)
            ++depth;
        else if (t[i].text == opener && --depth == 0)
            return i;
    }
    return -1;
}

/**
 * Walk backwards over the postfix chain that ends at @p idx (the
 * callee name): `journal_->appendResult`, `writer.finish`,
 * `fault::parseFaultSpec`, `a.b().c`.  Returns the index of the first
 * token *before* the chain (-1 when the chain opens the file).
 */
long
chainStart(const std::vector<Token> &t, long idx)
{
    long j = idx - 1;
    while (j >= 0) {
        const std::string &s = t[j].text;
        if (s == "::" || s == "." || s == "->") {
            --j;
            if (j < 0)
                break;
            if (t[j].text == ")" || t[j].text == "]") {
                const long open = matchBackward(t, j);
                if (open < 0)
                    break;
                j = open - 1;
                // The '(' may itself be preceded by a callee name.
                if (j >= 0 && t[j].kind == 'i')
                    --j;
                continue;
            }
            if (t[j].kind == 'i') {
                --j;
                continue;
            }
            break;
        }
        break;
    }
    return j;
}

/** Skip a balanced `<...>` starting at @p idx (must be '<'); returns
 *  the index after the matching '>', or -1 when it does not close
 *  within a declaration-sized window. */
long
skipTemplateArgs(const std::vector<Token> &t, long idx)
{
    long depth = 0;
    for (long i = idx; i < static_cast<long>(t.size()); ++i) {
        const std::string &s = t[i].text;
        if (s == "<")
            ++depth;
        else if (s == ">") {
            if (--depth == 0)
                return i + 1;
        } else if (s == ">>") {
            depth -= 2;
            if (depth <= 0)
                return i + 1;
        } else if (s == ";" || s == "{") {
            return -1; // was a comparison, not template args
        }
    }
    return -1;
}

// ---------------------------------------------------------------------
// BL001 — discarded Expected results
// ---------------------------------------------------------------------

struct ExpectedFn
{
    bool isStatic = false; ///< matched only behind a Class:: qualifier
    /** A same-named `void name(` declaration exists somewhere, so a
     *  bare call is ambiguous; match only behind `.`/`->`/`::`. */
    bool ambiguous = false;
};

/**
 * Collect the names of Expected-returning functions declared anywhere
 * in the scanned tree, plus type aliases of Expected (RunOutcome).
 */
struct ExpectedIndex
{
    std::set<std::string> typeNames{"Expected"};
    std::map<std::string, ExpectedFn> fns;
};

void
collectExpectedDecls(const std::vector<FileData> &files,
                     ExpectedIndex &index)
{
    // Aliases first (iterate to a fixpoint so aliases of aliases
    // resolve regardless of declaration order across files).
    bool grew = true;
    while (grew) {
        grew = false;
        for (const FileData &fd : files) {
            const auto &t = fd.toks;
            for (long i = 0;
                 i + 3 < static_cast<long>(t.size()); ++i) {
                if (t[i].text == "using" && t[i + 1].kind == 'i'
                    && t[i + 2].text == "="
                    && index.typeNames.find(t[i + 3].text)
                        != index.typeNames.end()) {
                    grew |= index.typeNames.insert(t[i + 1].text)
                                .second;
                }
            }
        }
    }

    // Declarations: `[static] TypeName[<...>] name (`.
    for (const FileData &fd : files) {
        const auto &t = fd.toks;
        for (long i = 0; i < static_cast<long>(t.size()); ++i) {
            if (t[i].kind != 'i'
                || index.typeNames.find(t[i].text)
                    == index.typeNames.end())
                continue;
            long j = i + 1;
            if (j < static_cast<long>(t.size()) && t[j].text == "<") {
                j = skipTemplateArgs(t, j);
                if (j < 0)
                    continue;
            }
            if (j + 1 >= static_cast<long>(t.size()))
                continue;
            if (t[j].kind != 'i' || t[j + 1].text != "(")
                continue;
            // Specifier window before the return type: static?
            bool isStatic = false;
            for (long k = i - 1; k >= 0 && k >= i - 6; --k) {
                const std::string &s = t[k].text;
                if (s == "static") {
                    isStatic = true;
                    break;
                }
                if (s != "[" && s != "]" && s != "nodiscard"
                    && s != "inline" && s != "constexpr"
                    && s != "friend" && s != "virtual"
                    && s != "explicit")
                    break;
            }
            auto [it, inserted] =
                index.fns.emplace(t[j].text, ExpectedFn{});
            if (inserted)
                it->second.isStatic = isStatic;
            else
                it->second.isStatic &= isStatic;
        }
    }

    // Demote names that are also declared returning void (e.g. the
    // variadic log-formatting append() vs TraceWriter::append): a
    // bare call can no longer be attributed, so only qualified or
    // member-syntax calls are matched for them.
    for (const FileData &fd : files) {
        const auto &t = fd.toks;
        for (long i = 0; i + 2 < static_cast<long>(t.size()); ++i) {
            if (t[i].text != "void" || t[i + 2].text != "(")
                continue;
            const auto it = index.fns.find(t[i + 1].text);
            if (it != index.fns.end())
                it->second.ambiguous = true;
        }
    }
}

void
checkDiscardedExpected(const FileData &fd, const ExpectedIndex &index,
                       Reporter &out)
{
    const auto &t = fd.toks;
    for (long i = 0; i < static_cast<long>(t.size()); ++i) {
        if (t[i].kind != 'i')
            continue;
        const auto fn = index.fns.find(t[i].text);
        if (fn == index.fns.end())
            continue;
        if (i + 1 >= static_cast<long>(t.size())
            || t[i + 1].text != "(")
            continue;

        const std::string prev = i > 0 ? t[i - 1].text : std::string();
        if (fn->second.isStatic) {
            // Static factories only match behind `Class::`, so a
            // same-named member elsewhere (std::ofstream::open) can
            // never be confused with the Expected-returning one.
            if (prev != "::")
                continue;
        } else {
            if (fn->second.ambiguous && prev != "::" && prev != "."
                && prev != "->")
                continue;
            // Skip declaration-looking occurrences: preceded by the
            // return type (`>`/ident) or attribute `]`.
            if (prev == ">" || prev == "]")
                continue;
            if (i > 0 && t[i - 1].kind == 'i' && prev != "return"
                && prev != "else" && prev != "do" && prev != "throw"
                && prev != "case")
                continue;
        }

        const long close = matchForward(t, i + 1);
        if (close < 0
            || close + 1 >= static_cast<long>(t.size())
            || t[close + 1].text != ";")
            continue; // result feeds an expression or initializer

        const long before = chainStart(t, i);
        bool discarded = false;
        if (before < 0) {
            discarded = true;
        } else {
            const std::string &b = t[before].text;
            if (b == ";" || b == "{" || b == "}" || b == "else"
                || b == "do" || b == ":") {
                discarded = true;
            } else if (b == ")") {
                // `if (...) call();` discards; `(void) call();` and
                // other casts are an explicit, intentional drop.
                const long open = matchBackward(t, before);
                if (open > 0) {
                    const std::string &head = t[open - 1].text;
                    if (head == "if" || head == "while" || head == "for"
                        || head == "switch")
                        discarded = true;
                }
            }
        }
        if (discarded) {
            out.report(fd, t[i].line, "BL001",
                       "result of Expected-returning '" + t[i].text
                           + "()' is discarded; check it or cast "
                             "to (void) deliberately");
        }
    }
}

// ---------------------------------------------------------------------
// BL002 — additive arithmetic on shed unit counts
// ---------------------------------------------------------------------

bool
endsWith(const std::string &s, const char *suffix)
{
    const std::size_t m = std::strlen(suffix);
    return s.size() >= m && s.compare(s.size() - m, m, suffix) == 0;
}

void
checkRawUnitArith(const FileData &fd, Reporter &out)
{
    if (endsWith(fd.display, "src/common/units.hh")
        || endsWith(fd.display, "src/common/types.hh"))
        return; // the sanctioned dimension-crossing seams
    const auto &t = fd.toks;
    for (long i = 2; i + 2 < static_cast<long>(t.size()); ++i) {
        if (t[i].text != "count"
            || (t[i - 1].text != "." && t[i - 1].text != "->")
            || t[i + 1].text != "(" || t[i + 2].text != ")")
            continue;
        const std::string after = i + 3 < static_cast<long>(t.size())
            ? t[i + 3].text
            : std::string();
        bool additive = after == "+" || after == "-";
        if (!additive) {
            // `... + x.count()` — look before the postfix chain.
            const long before = chainStart(t, i);
            if (before >= 0
                && (t[before].text == "+" || t[before].text == "-"))
                additive = true;
        }
        if (additive) {
            out.report(fd, t[i].line, "BL002",
                       "additive arithmetic on a raw .count(); do the "
                       "sum inside the strong unit type "
                       "(common/units.hh)");
        }
    }
}

// ---------------------------------------------------------------------
// BL003 — naked standard synchronisation primitives
// ---------------------------------------------------------------------

void
checkNakedMutex(const FileData &fd, Reporter &out)
{
    if (endsWith(fd.display, "src/common/sync.hh"))
        return;
    static const std::set<std::string> kBanned = {
        "mutex", "timed_mutex", "recursive_mutex",
        "recursive_timed_mutex", "shared_mutex", "shared_timed_mutex",
        "condition_variable", "condition_variable_any", "lock_guard",
        "unique_lock", "scoped_lock", "shared_lock", "once_flag",
        "call_once"};
    const auto &t = fd.toks;
    for (long i = 0; i + 2 < static_cast<long>(t.size()); ++i) {
        if (t[i].text == "std" && t[i + 1].text == "::"
            && kBanned.find(t[i + 2].text) != kBanned.end()) {
            out.report(fd, t[i].line, "BL003",
                       "naked std::" + t[i + 2].text
                           + " outside common/sync.hh; use "
                             "bear::Mutex/MutexLock/CondVar/OnceFlag");
        }
    }
    for (const PpLine &pp : fd.pp) {
        if (pp.directive != "include")
            continue;
        if (pp.rest.rfind("<mutex>", 0) == 0
            || pp.rest.rfind("<condition_variable>", 0) == 0
            || pp.rest.rfind("<shared_mutex>", 0) == 0) {
            out.report(fd, pp.line, "BL003",
                       "include " + pp.rest.substr(0, pp.rest.find('>') + 1)
                           + " outside common/sync.hh; include "
                             "common/sync.hh instead");
        }
    }
}

// ---------------------------------------------------------------------
// BL004 — ambient nondeterminism
// ---------------------------------------------------------------------

void
checkNondeterminism(const FileData &fd, Reporter &out)
{
    // The watchdog (steady_clock, sanctioned) and the injector live
    // here; they are the only places wall-clock may enter.
    if (endsWith(fd.display, "src/sim/runner.cc")
        || endsWith(fd.display, "src/common/fault.cc"))
        return;
    static const std::set<std::string> kBannedTypes = {
        "random_device", "system_clock", "high_resolution_clock"};
    static const std::set<std::string> kBannedCalls = {
        "rand", "srand", "gettimeofday", "clock_gettime",
        "timespec_get", "localtime", "gmtime"};
    const auto &t = fd.toks;
    for (long i = 0; i < static_cast<long>(t.size()); ++i) {
        if (t[i].kind != 'i')
            continue;
        const std::string prev = i > 0 ? t[i - 1].text : std::string();
        if (kBannedTypes.find(t[i].text) != kBannedTypes.end()) {
            // std::random_device / std::chrono::system_clock — a
            // qualified type mention is already the violation.
            if (prev == "::") {
                out.report(fd, t[i].line, "BL004",
                           "nondeterministic '" + t[i].text
                               + "' outside the runner/fault seams; "
                                 "derive from the seeded Rng");
            }
            continue;
        }
        if (kBannedCalls.find(t[i].text) != kBannedCalls.end()
            && i + 1 < static_cast<long>(t.size())
            && t[i + 1].text == "(") {
            if (prev == "." || prev == "->")
                continue; // a member of ours, not the libc call
            // `unsigned rand()` — a declaration, not a call.
            if (i > 0 && t[i - 1].kind == 'i' && prev != "return"
                && prev != "else" && prev != "do" && prev != "case")
                continue;
            out.report(fd, t[i].line, "BL004",
                       "wall-clock / ambient randomness '" + t[i].text
                           + "()' outside the runner/fault seams; "
                             "derive from the seeded Rng");
        }
    }
}

// ---------------------------------------------------------------------
// BL005 — header include hygiene
// ---------------------------------------------------------------------

void
checkHeaderHygiene(const FileData &fd, Reporter &out)
{
    if (!fd.isHeader)
        return;

    const auto &t = fd.toks;
    for (long i = 0; i + 1 < static_cast<long>(t.size()); ++i) {
        if (t[i].text == "using" && t[i + 1].text == "namespace") {
            out.report(fd, t[i].line, "BL005",
                       "`using namespace` in a header leaks into "
                       "every includer; qualify names instead");
        }
    }

    for (const PpLine &pp : fd.pp) {
        if (pp.directive == "pragma"
            && pp.rest.rfind("once", 0) == 0) {
            out.report(fd, pp.line, "BL005",
                       "#pragma once; use the project's BEAR_*_HH "
                       "include-guard style");
        }
    }

    auto guardName = [](const std::string &rest) {
        std::istringstream is(rest);
        std::string name;
        is >> name;
        return name;
    };
    auto isGuardShaped = [](const std::string &name) {
        if (name.rfind("BEAR_", 0) != 0 || !endsWith(name, "_HH"))
            return false;
        return std::all_of(name.begin(), name.end(), [](char c) {
            return (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
                || c == '_';
        });
    };

    if (fd.pp.empty()) {
        out.report(fd, 1, "BL005",
                   "header has no include guard (expected #ifndef "
                   "BEAR_..._HH / #define)");
        return;
    }
    const PpLine &first = fd.pp.front();
    if (first.directive != "ifndef") {
        out.report(fd, first.line, "BL005",
                   "header must open with its #ifndef BEAR_..._HH "
                   "include guard");
        return;
    }
    const std::string guard = guardName(first.rest);
    if (!isGuardShaped(guard)) {
        out.report(fd, first.line, "BL005",
                   "include guard '" + guard
                       + "' does not match the BEAR_*_HH convention");
    }
    if (fd.pp.size() < 2 || fd.pp[1].directive != "define"
        || guardName(fd.pp[1].rest) != guard) {
        out.report(fd, first.line, "BL005",
                   "include guard #ifndef " + guard
                       + " is not followed by its matching #define");
    }
}

// ---------------------------------------------------------------------
// BL006 — private tag arrays in src/dramcache/
// ---------------------------------------------------------------------

/**
 * The TagStore port (DESIGN.md §14) deleted every per-design
 * `std::vector<Tad>`-style layout; this rule keeps them deleted.  A
 * struct counts as a tag entry when its body declares `tag` and
 * `valid` but no `set` — a set-indexed entry (the NTC's) is a victim
 * buffer keyed by set, not a parallel tag plane, and stays legal.
 */
void
checkPrivateTagArray(const FileData &fd, Reporter &out)
{
    if (fd.display.find("src/dramcache/") == std::string::npos
        || endsWith(fd.display, "tag_store.hh"))
        return;
    const auto &t = fd.toks;
    const long n = static_cast<long>(t.size());

    // Tag-shaped struct/class definitions declared in this file.
    std::set<std::string> tagShaped;
    for (long i = 0; i + 2 < n; ++i) {
        if (t[i].text != "struct" && t[i].text != "class")
            continue;
        if (t[i + 1].kind != 'i' || t[i + 2].text != "{")
            continue;
        long depth = 0;
        bool hasTag = false, hasValid = false, hasSet = false;
        for (long j = i + 2; j < n; ++j) {
            if (t[j].text == "{") {
                ++depth;
            } else if (t[j].text == "}") {
                if (--depth == 0)
                    break;
            } else if (t[j].kind == 'i') {
                if (t[j].text == "tag")
                    hasTag = true;
                else if (t[j].text == "valid")
                    hasValid = true;
                else if (t[j].text == "set")
                    hasSet = true;
            }
        }
        if (hasTag && hasValid && !hasSet)
            tagShaped.insert(t[i + 1].text);
    }

    for (long i = 0; i < n; ++i) {
        if (t[i].text != "vector" || i + 1 >= n
            || t[i + 1].text != "<")
            continue;
        const long after = skipTemplateArgs(t, i + 1);
        if (after < 0)
            continue;
        // Element type: the last identifier inside the template args
        // (`std::uint64_t` resolves to `uint64_t`, `Tad` to itself).
        std::string elem;
        for (long k = i + 2; k < after - 1; ++k)
            if (t[k].kind == 'i')
                elem = t[k].text;
        if (tagShaped.find(elem) != tagShaped.end()) {
            out.report(fd, t[i].line, "BL006",
                       "hand-rolled tag array 'std::vector<" + elem
                           + ">' in src/dramcache/; use the shared "
                             "SoA TagStore (dramcache/tag_store.hh)");
            continue;
        }
        if (after < n && t[after].kind == 'i'
            && (t[after].text == "lru_"
                || endsWith(t[after].text, "_lru_"))) {
            out.report(fd, t[after].line, "BL006",
                       "shadow replacement vector '" + t[after].text
                           + "' in src/dramcache/; use TagStore's "
                             "replacement plane");
        }
    }
}

// ---------------------------------------------------------------------
// BL007 — O(n) front/middle container shifts on the timing hot path
// ---------------------------------------------------------------------

/**
 * The O(1) channel-model port (DESIGN.md §15) replaced every
 * `erase(begin(), ...)` / `insert(begin() + k, ...)` memmove on the
 * per-access path with circular head/tail indices; this rule keeps
 * them out.  Scope is deliberately limited to the hot directories
 * (src/mem/, src/dramcache/): shifting a small cold vector elsewhere
 * is fine and stays legal.
 */
void
checkHotPathShift(const FileData &fd, Reporter &out)
{
    if (fd.display.find("src/mem/") == std::string::npos
        && fd.display.find("src/dramcache/") == std::string::npos)
        return;
    const auto &t = fd.toks;
    const long n = static_cast<long>(t.size());
    for (long i = 1; i + 1 < n; ++i) {
        if (t[i].text != "erase" && t[i].text != "insert")
            continue;
        // Member-call syntax only: a free function named insert (or a
        // declaration) is not a container mutation.
        if (t[i - 1].text != "." && t[i - 1].text != "->")
            continue;
        if (t[i + 1].text != "(")
            continue;
        const long close = matchForward(t, i + 1);
        if (close < 0)
            continue;
        bool at_begin = false;
        for (long j = i + 2; j < close && !at_begin; ++j)
            at_begin = t[j].text == "begin" || t[j].text == "cbegin";
        if (at_begin) {
            out.report(fd, t[i].line, "BL007",
                       "'" + t[i].text
                           + "(... begin ...)' shifts the container "
                             "on the timing hot path; use a circular "
                             "index / ring buffer (DESIGN.md §15)");
        }
    }
}

// ---------------------------------------------------------------------
// BL008 — raw socket / blocking I/O outside the serve layer
// ---------------------------------------------------------------------

/**
 * beard's daemon loop (src/serve/, DESIGN.md §16) is the only place a
 * socket descriptor may be created or blocked on: its recv timeouts,
 * poll ticks and drain logic are what make every blocking call
 * interruptible.  A raw recv() elsewhere is a thread the drain cannot
 * wake.  read()/write() are deliberately not banned — the simulator's
 * own DramCache::read would drown the rule in false positives — so
 * the gate is the calls that create or service sockets.
 */
void
checkRawSocketIo(const FileData &fd, Reporter &out)
{
    if (fd.display.find("src/serve/") != std::string::npos)
        return;
    static const std::set<std::string> kBanned = {
        "socket", "bind", "listen", "accept", "accept4", "connect",
        "recv", "recvfrom", "recvmsg", "send", "sendto", "sendmsg",
        "setsockopt", "getsockopt", "shutdown", "poll", "ppoll",
        "select", "pselect", "epoll_create", "epoll_create1",
        "epoll_ctl", "epoll_wait"};
    const auto &t = fd.toks;
    for (long i = 0; i < static_cast<long>(t.size()); ++i) {
        if (t[i].kind != 'i'
            || kBanned.find(t[i].text) == kBanned.end())
            continue;
        if (i + 1 >= static_cast<long>(t.size())
            || t[i + 1].text != "(")
            continue;
        const std::string prev = i > 0 ? t[i - 1].text : std::string();
        if (prev == "." || prev == "->")
            continue; // a member of ours, not the libc call
        if (prev == "::") {
            // `::bind(` at global scope is the libc call; a
            // namespace-qualified `util::bind(` is someone else's.
            if (i >= 2
                && (t[i - 2].kind == 'i' || t[i - 2].text == ">"))
                continue;
        } else if (i > 0 && t[i - 1].kind == 'i' && prev != "return"
                   && prev != "else" && prev != "do"
                   && prev != "case") {
            continue; // `int socket(...)` — a declaration
        }
        out.report(fd, t[i].line, "BL008",
                   "raw socket / blocking-I/O call '" + t[i].text
                       + "()' outside src/serve/; route it through "
                         "the serve layer (DESIGN.md §16)");
    }
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" || ext == ".h"
        || ext == ".hpp";
}

bool
isHeaderFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".hh" || ext == ".h" || ext == ".hpp";
}

/**
 * Gather source files under @p roots (files or directories), skipping
 * build trees, the deliberately-uncompilable compile-fail corpus and
 * bearlint's own golden violation corpus.
 */
bool
gatherFiles(const fs::path &root, const std::vector<std::string> &paths,
            bool skipCorpora, std::vector<fs::path> &out)
{
    auto skipDir = [&](const fs::path &dir) {
        const std::string name = dir.filename().string();
        return skipCorpora
            && (name == "build" || name == "compile_fail"
                || name == "corpus"
                || name.rfind("build-", 0) == 0);
    };
    for (const std::string &p : paths) {
        const fs::path full = root / p;
        std::error_code ec;
        if (fs::is_regular_file(full, ec)) {
            out.push_back(full);
            continue;
        }
        if (!fs::is_directory(full, ec)) {
            std::fprintf(stderr, "bearlint: %s: not a file or "
                                 "directory\n",
                         full.string().c_str());
            return false;
        }
        fs::recursive_directory_iterator it(
            full, fs::directory_options::skip_permission_denied, ec);
        const fs::recursive_directory_iterator end;
        while (it != end) {
            if (it->is_directory(ec) && skipDir(it->path())) {
                it.disable_recursion_pending();
            } else if (it->is_regular_file(ec)
                       && isSourceFile(it->path())) {
                out.push_back(it->path());
            }
            it.increment(ec);
            if (ec) {
                std::fprintf(stderr, "bearlint: walking %s: %s\n",
                             full.string().c_str(),
                             ec.message().c_str());
                return false;
            }
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return true;
}

bool
loadFile(const fs::path &path, const fs::path &root, FileData &fd)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "bearlint: cannot read %s\n",
                     path.string().c_str());
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::error_code ec;
    const fs::path rel = fs::relative(path, root, ec);
    fd.display = (ec || rel.empty()) ? path.string() : rel.string();
    fd.isHeader = isHeaderFile(path);
    lex(ss.str(), fd);
    return true;
}

/** Run every rule over @p files; diagnostics land in @p out. */
void
runRules(const std::vector<FileData> &files, Reporter &out)
{
    ExpectedIndex index;
    collectExpectedDecls(files, index);
    for (const FileData &fd : files) {
        checkDiscardedExpected(fd, index, out);
        checkRawUnitArith(fd, out);
        checkNakedMutex(fd, out);
        checkNondeterminism(fd, out);
        checkHeaderHygiene(fd, out);
        checkPrivateTagArray(fd, out);
        checkHotPathShift(fd, out);
        checkRawSocketIo(fd, out);
    }
}

int
listRules()
{
    std::printf("bearlint rules (suppress one line with "
                "// bearlint-allow(ID)):\n");
    for (const RuleInfo &r : kRules)
        std::printf("  %s  %-20s %s\n", r.id, r.name, r.summary);
    return 0;
}

/**
 * Golden-corpus selftest: scan CORPUS_DIR (corpora included) and
 * compare the diagnostic set against expected.txt, line for line.
 * expected.txt rows are `file:line:RULE`; order does not matter.
 */
int
selftest(const fs::path &corpus)
{
    std::ifstream exp(corpus / "expected.txt");
    if (!exp) {
        std::fprintf(stderr, "bearlint: %s/expected.txt missing\n",
                     corpus.string().c_str());
        return 2;
    }
    std::set<std::string> want;
    std::string lineText;
    while (std::getline(exp, lineText)) {
        if (!lineText.empty() && lineText[0] != '#')
            want.insert(lineText);
    }

    std::vector<fs::path> paths;
    if (!gatherFiles(corpus, {"."}, false, paths))
        return 2;
    std::vector<FileData> files(paths.size());
    for (std::size_t i = 0; i < paths.size(); ++i) {
        if (!loadFile(paths[i], corpus, files[i]))
            return 2;
    }
    Reporter reporter;
    runRules(files, reporter);

    std::set<std::string> got;
    for (const Diag &d : reporter.diags()) {
        got.insert(d.file + ":" + std::to_string(d.line) + ":"
                   + d.rule);
    }

    bool ok = true;
    for (const std::string &w : want) {
        if (got.find(w) == got.end()) {
            std::fprintf(stderr,
                         "selftest: MISSING expected diagnostic %s\n",
                         w.c_str());
            ok = false;
        }
    }
    for (const std::string &g : got) {
        if (want.find(g) == want.end()) {
            std::fprintf(stderr,
                         "selftest: UNEXPECTED diagnostic %s\n",
                         g.c_str());
            ok = false;
        }
    }
    if (!ok)
        return 1;
    std::printf("bearlint selftest: %zu diagnostics matched "
                "expected.txt exactly\n",
                want.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = ".";
    std::vector<std::string> paths;
    bool wantSelftest = false;
    fs::path corpusDir;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(kUsage, stdout);
            return 0;
        }
        if (arg == "--list-rules")
            return listRules();
        if (arg == "--root") {
            if (++i >= argc) {
                std::fputs(kUsage, stderr);
                return 2;
            }
            root = argv[i];
            continue;
        }
        if (arg == "--selftest") {
            if (++i >= argc) {
                std::fputs(kUsage, stderr);
                return 2;
            }
            wantSelftest = true;
            corpusDir = argv[i];
            continue;
        }
        if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "bearlint: unknown option %s\n",
                         arg.c_str());
            std::fputs(kUsage, stderr);
            return 2;
        }
        paths.push_back(arg);
    }

    if (wantSelftest)
        return selftest(corpusDir);

    if (paths.empty())
        paths = {"src", "tools", "bench", "tests", "examples"};

    std::vector<fs::path> filePaths;
    if (!gatherFiles(root, paths, true, filePaths))
        return 2;
    if (filePaths.empty()) {
        std::fprintf(stderr, "bearlint: no source files found\n");
        return 2;
    }

    std::vector<FileData> files(filePaths.size());
    for (std::size_t i = 0; i < filePaths.size(); ++i) {
        if (!loadFile(filePaths[i], root, files[i]))
            return 2;
    }

    Reporter reporter;
    runRules(files, reporter);
    reporter.sortAndPrint();
    if (!reporter.diags().empty()) {
        std::fprintf(stderr,
                     "bearlint: %zu violation(s) in %zu file(s) "
                     "scanned\n",
                     reporter.diags().size(), files.size());
        return 1;
    }
    return 0;
}
