/**
 * @file
 * bearload: concurrent load generator for the beard daemon.
 *
 * Spawns N tenant sessions against a running daemon, each streaming
 * the same recorded .beartrace and collecting its schema-v2 report
 * (serve/client.hh handles Busy backpressure by honouring the
 * server's retry hint).  Every session must complete and every report
 * must be byte-identical — the sessions replay the same trace under
 * the same design, so any divergence is a server bug, not load noise.
 * One report is emitted (stdout, or --report PATH) for diffing
 * against `beard --offline`; the Busy tally lands on stderr so CI can
 * see backpressure engage.
 *
 *   bearload <socket> <trace> [--tenants N] [--design D]
 *            [--report PATH] [--tolerate-faults 1]
 *   bearload --selftest
 *
 * --tolerate-faults turns bearload into the client half of a chaos
 * soak (ci.sh step 11): tenants that receive a structured Error frame
 * from a fault-injected daemon are counted rather than fatal, while
 * the surviving tenants' reports must still agree byte-for-byte.
 *
 * The self-test is the full loop in one process: record a tiny trace,
 * serve it from an in-process daemon on a private socket, run
 * concurrent tenants through this client, and require the served
 * report to equal the offline Runner's report on the same file.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "serve/client.hh"
#include "serve/server.hh"
#include "sim/report.hh"
#include "sim/runner.hh"
#include "tools/tool_args.hh"
#include "trace/trace_writer.hh"

namespace
{

const char *const kUsage =
    "usage: bearload <socket> <trace> [--tenants N] [--design D]\n"
    "                [--report PATH] [--tolerate-faults 1]\n"
    "       bearload --selftest\n"
    "  --tenants  concurrent tenant sessions (default 8, max 4096)\n"
    "  --design   design roster name every tenant runs (default "
    "BEAR)\n"
    "  --report   write the (identical) report here instead of "
    "stdout\n"
    "  --tolerate-faults 1\n"
    "             chaos mode: tenants answered with a structured\n"
    "             server-side Error frame (internal, deadline, idle,\n"
    "             draining, bad-trace, busy) count as faulted instead\n"
    "             of failing the run; at least one tenant must stay\n"
    "             healthy and all healthy reports must still be\n"
    "             byte-identical.  Transport/protocol breakage (io,\n"
    "             truncated, bad-crc, ...) always fails.\n";

/** Chaos mode: may this structured failure be tolerated? */
bool
tolerableFault(bear::serve::ServeErrorKind kind)
{
    using bear::serve::ServeErrorKind;
    switch (kind) {
    case ServeErrorKind::Internal:
    case ServeErrorKind::Deadline:
    case ServeErrorKind::Idle:
    case ServeErrorKind::Draining:
    case ServeErrorKind::BadTrace:
    case ServeErrorKind::Busy:
        return true;
    default:
        // A crashed connection or a corrupt frame is never an
        // acceptable chaos outcome: the daemon's contract is that
        // even a faulted tenant hears a well-formed Error frame.
        return false;
    }
}

/** Read a whole file as bytes; empty optional-style failure → exit. */
std::vector<std::uint8_t>
readFileOrDie(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "bearload: cannot open %s\n%s",
                     path.c_str(), kUsage);
        std::exit(2);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string &data = ss.str();
    return std::vector<std::uint8_t>(data.begin(), data.end());
}

/** One tenant's thread: session outcome or the structured failure. */
struct TenantSlot
{
    bool ok = false;
    bear::serve::ServeErrorKind errorKind =
        bear::serve::ServeErrorKind::Io;
    std::string report;
    std::string error;
    std::uint32_t busyRetries = 0;
};

/**
 * Run @p tenants concurrent sessions of @p trace_bytes against
 * @p socket_path.  Returns true when every session completed and all
 * reports are byte-identical; with @p tolerate_faults, sessions that
 * received a tolerable structured Error frame (see tolerableFault)
 * are counted in @p faulted_total instead of failing the run, and at
 * least one tenant must still complete.  The shared healthy report
 * and the Busy tally come back through the out-parameters.
 */
bool
runTenants(const std::string &socket_path,
           const std::vector<std::uint8_t> &trace_bytes,
           const std::string &design, std::uint32_t tenants,
           bool tolerate_faults, std::string &report,
           std::uint64_t &busy_total, std::uint64_t &faulted_total)
{
    std::vector<TenantSlot> slots(tenants);
    std::vector<std::thread> threads;
    threads.reserve(tenants);
    for (std::uint32_t i = 0; i < tenants; ++i) {
        threads.emplace_back([&, i] {
            bear::serve::ClientOptions options;
            options.socketPath = socket_path;
            options.design = design;
            auto outcome =
                bear::serve::Client::runSession(options, trace_bytes);
            if (!outcome.hasValue()) {
                slots[i].errorKind = outcome.error().kind;
                slots[i].error = outcome.error().message();
                return;
            }
            slots[i].ok = true;
            slots[i].report = std::move(outcome->reportJson);
            slots[i].busyRetries = outcome->busyRetries;
        });
    }
    for (std::thread &t : threads)
        t.join();

    bool ok = true;
    busy_total = 0;
    faulted_total = 0;
    for (std::uint32_t i = 0; i < tenants; ++i) {
        if (!slots[i].ok) {
            if (tolerate_faults
                && tolerableFault(slots[i].errorKind)) {
                ++faulted_total;
                std::fprintf(stderr,
                             "bearload: tenant %u faulted "
                             "(tolerated): %s\n",
                             i, slots[i].error.c_str());
            } else {
                std::fprintf(stderr,
                             "bearload: tenant %u failed: %s\n", i,
                             slots[i].error.c_str());
                ok = false;
            }
            continue;
        }
        busy_total += slots[i].busyRetries;
        if (report.empty()) {
            report = slots[i].report;
        } else if (report != slots[i].report) {
            std::fprintf(stderr,
                         "bearload: tenant %u report diverges from "
                         "the first healthy tenant (same trace, same "
                         "design — server bug)\n",
                         i);
            ok = false;
        }
    }
    if (report.empty()) {
        std::fprintf(stderr,
                     "bearload: no tenant completed healthily\n");
        return false;
    }
    return ok;
}

/** Record a tiny deterministic 2-core trace for the self-test. */
bool
writeSelftestTrace(const std::string &path)
{
    bear::trace::TraceMeta meta;
    meta.workload = "selftest";
    meta.coreCount = 2;
    meta.seed = 7;
    auto writer = bear::trace::TraceWriter::create(path, meta);
    if (!writer.hasValue()) {
        std::fprintf(stderr, "selftest: %s\n",
                     writer.error().message().c_str());
        return false;
    }
    for (std::uint32_t i = 0; i < 512; ++i) {
        for (bear::CoreId core = 0; core < 2; ++core) {
            bear::MemRef ref;
            ref.vaddr = 0x10000 + 64ULL * ((i * 7 + core * 131) % 256);
            ref.pc = 0x400000 + 4ULL * (i % 32);
            ref.instGap = 1 + (i % 3);
            ref.isWrite = (i % 5) == 0;
            ref.dependent = (i % 2) == 0;
            auto appended = writer->append(core, ref);
            if (!appended.hasValue()) {
                std::fprintf(stderr, "selftest: %s\n",
                             appended.error().message().c_str());
                return false;
            }
        }
    }
    auto finished = writer->finish();
    if (!finished.hasValue()) {
        std::fprintf(stderr, "selftest: %s\n",
                     finished.error().message().c_str());
        return false;
    }
    return true;
}

/** Small budgets: the self-test proves plumbing, not paper numbers. */
bear::RunnerOptions
selftestBudgets()
{
    bear::RunnerOptions options;
    options.scale = 0.015625;
    options.warmupRefsPerCore = 2000;
    options.measureRefsPerCore = 1000;
    options.workers = 1;
    return options;
}

int
selftest()
{
    const std::string tag =
        std::to_string(static_cast<unsigned>(::getpid()));
    const std::string trace_path =
        "/tmp/bearload-selftest-" + tag + ".beartrace";
    const std::string socket_path =
        "/tmp/bearload-selftest-" + tag + ".sock";
    if (!writeSelftestTrace(trace_path))
        return 1;

    bool ok = true;
    auto check = [&](bool cond, const char *what) {
        if (!cond) {
            std::fprintf(stderr, "selftest: FAILED: %s\n", what);
            ok = false;
        }
    };

    std::string served;
    {
        bear::serve::ServerOptions options;
        options.socketPath = socket_path;
        options.shards = 1;
        options.queueDepth = 2;
        options.busyRetryMs = 5;
        options.run = selftestBudgets();
        bear::serve::Server server(options);
        auto started = server.start();
        check(started.hasValue(), "in-process daemon starts");
        if (started.hasValue()) {
            std::uint64_t busy = 0;
            std::uint64_t faulted = 0;
            check(runTenants(socket_path, readFileOrDie(trace_path),
                             "BEAR", 4, false, served, busy, faulted),
                  "4 concurrent tenants all complete identically");
            server.requestDrain(bear::CancelReason::None);
            check(server.serve() == 0, "drain exits 0");
        }
    }

    // The byte-identity contract: the served report must equal the
    // offline Runner's report for the same trace and design.
    if (ok) {
        bear::RunnerOptions options = selftestBudgets();
        options.cores = 2;
        options.traceInPath = trace_path;
        bear::Runner runner(options);
        const bear::RunResult offline =
            runner.runRate(bear::DesignKind::Bear, "selftest");
        check(served == bear::runResultToJson(offline),
              "served report is byte-identical to the offline run");
    }

    std::remove(trace_path.c_str());
    if (ok)
        std::printf("selftest passed\n");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const bear::tools::ToolArgs args(
        argc, argv,
        {"tenants", "design", "report", "tolerate-faults"}, kUsage);
    if (args.selftest())
        return selftest();
    if (args.positional().size() != 2)
        args.fail("expected <socket> and <trace>");

    const std::string socket_path = args.positional()[0];
    const std::string trace_path = args.positional()[1];
    const std::uint64_t tenants = args.u64Or("tenants", 8);
    if (tenants < 1 || tenants > 4096)
        args.fail("--tenants wants 1..4096");
    const std::string design = args.stringOr("design", "BEAR");
    const bool tolerate = args.u64Or("tolerate-faults", 0) != 0;

    const std::vector<std::uint8_t> trace_bytes =
        readFileOrDie(trace_path);
    std::string report;
    std::uint64_t busy = 0;
    std::uint64_t faulted = 0;
    if (!runTenants(socket_path, trace_bytes, design,
                    static_cast<std::uint32_t>(tenants), tolerate,
                    report, busy, faulted)) {
        std::fprintf(stderr, "bearload: FAILED\n");
        return 1;
    }
    std::fprintf(stderr,
                 "bearload: %llu healthy tenants, %llu faulted, "
                 "%llu busy retries\n",
                 static_cast<unsigned long long>(tenants - faulted),
                 static_cast<unsigned long long>(faulted),
                 static_cast<unsigned long long>(busy));

    const std::string report_path = args.stringOr("report", "");
    if (report_path.empty()) {
        std::printf("%s\n", report.c_str());
    } else {
        std::ofstream out(report_path,
                          std::ios::binary | std::ios::trunc);
        out << report << "\n";
        if (!out) {
            std::fprintf(stderr, "bearload: cannot write %s\n",
                         report_path.c_str());
            return 1;
        }
    }
    return 0;
}
