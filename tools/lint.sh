#!/usr/bin/env bash
# Static analysis: bearlint (the project-rule analyzer, always) plus
# clang-tidy (config: .clang-tidy) over the simulator sources using
# the compile database from the build tree.
#
#   tools/lint.sh [build-dir]
#
# The build dir defaults to ./build and must have been configured
# (CMAKE_EXPORT_COMPILE_COMMANDS is always on, see CMakeLists.txt).
# bearlint is self-contained and runs on every toolchain; any
# diagnostic fails the lint run.  The clang-tidy half is skipped with
# a notice when clang-tidy is not installed so that tools/ci.sh stays
# runnable on toolchains without clang.
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"

status=0

# bearlint first: it needs no compile database, only the built binary.
bearlint="${build_dir}/tools/bearlint"
if [[ ! -x "${bearlint}" ]]; then
    cmake --build "${build_dir}" --target bearlint >/dev/null
fi
echo "== bearlint"
"${bearlint}" --root . || status=1

# Self-sufficiency probe (the compiled half of bearlint's BL005): every
# header must build as its own translation unit, so include order in
# consumers can never hide a missing include.
echo "== header self-sufficiency"
while IFS= read -r header; do
    if ! "${CXX:-c++}" -fsyntax-only -x c++ -std=c++20 -Isrc \
            "${header}"; then
        echo "lint.sh: ${header} is not self-sufficient" >&2
        status=1
    fi
done < <(find src -name '*.hh' | sort)

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "lint.sh: clang-tidy not found; skipping clang-tidy" >&2
    exit "${status}"
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
    echo "lint.sh: ${build_dir}/compile_commands.json missing;" \
         "configure the build first (cmake -B ${build_dir} -S .)" >&2
    exit 1
fi

# Header-only modules (src/obs, sim/job_control.hh) never appear in
# the compile database, so lint them as standalone translation units
# first; src/trace and the resilience headers (sim/journal.hh,
# common/fault.hh) ride along so their inline code is covered even
# when the database misses a consumer.
for header in src/obs/*.hh src/trace/*.hh src/sim/job_control.hh \
              src/sim/journal.hh src/common/fault.hh \
              src/common/sync.hh; do
    echo "== clang-tidy ${header}"
    clang-tidy --quiet "${header}" -- -xc++ -std=c++20 -Isrc \
        || status=1
done

# run-clang-tidy parallelises across the database when available.
if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "${build_dir}" -quiet "src/.*\.cc$" || status=1
    exit "${status}"
fi

while IFS= read -r file; do
    echo "== clang-tidy ${file}"
    clang-tidy -p "${build_dir}" --quiet "${file}" || status=1
done < <(find src -name '*.cc' | sort)
exit "${status}"
