/**
 * @file
 * Offline analyzer for the BEAR_JSON report stream.
 *
 * Every bench binary appends one JSON document per invocation when
 * BEAR_JSON=<path> is set (JSON-lines).  This tool digests that stream
 * without rerunning anything: per run it prints the schema-v2 latency
 * distributions (p50/p95/p99 against the scalar mean), the event-trace
 * activity breakdown, and the busiest DRAM-cache banks — the numbers
 * one actually wants when asking "where did the cycles go?".
 *
 *   trace_stats <report.jsonl> [--top N]
 *   trace_stats --selftest
 *
 * Missing or unreadable inputs print the usage text and exit
 * non-zero; nothing is ever silently summarised as "no documents".
 * The self-test runs an embedded report line through the same parse
 * and summarise path, then round-trips it through a scratch file via
 * processFile(), so CI exercises the tool with zero simulation.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "tools/tool_args.hh"

namespace
{

using bear::JsonValue;

const char *const kUsage =
    "usage: trace_stats <report.jsonl> [--top N]\n"
    "       trace_stats --selftest\n"
    "  --top  busiest banks to print per run (default 8)\n";

struct BankRow
{
    std::uint64_t channel = 0;
    std::uint64_t bank = 0;
    std::uint64_t reads = 0;
    std::uint64_t conflictStall = 0;
    double utilization = 0.0;
};

/** One histogram line: name, count, mean, tail percentiles. */
void
printHistogram(const std::string &name, const JsonValue &hist)
{
    std::printf("    %-18s n=%-10llu mean=%-9.1f p50=%-7llu "
                "p95=%-7llu p99=%-7llu max=%llu\n",
                name.c_str(),
                static_cast<unsigned long long>(hist["count"].asU64()),
                hist["mean"].asDouble(),
                static_cast<unsigned long long>(hist["p50"].asU64()),
                static_cast<unsigned long long>(hist["p95"].asU64()),
                static_cast<unsigned long long>(hist["p99"].asU64()),
                static_cast<unsigned long long>(hist["max"].asU64()));
}

/** Digest one run's "stats" object. */
void
summarizeStats(const std::string &workload, const std::string &design,
               const JsonValue &stats, std::size_t top_banks)
{
    std::printf("%s / %s\n", workload.c_str(), design.c_str());

    const JsonValue *schema = stats.find("schemaVersion");
    if (!schema) {
        std::printf("    (schema v1 document: no distributions)\n");
        return;
    }

    if (const JsonValue *hists = stats.find("histograms")) {
        for (const auto &[name, hist] : hists->members())
            printHistogram(name, hist);
    }

    if (const JsonValue *trace = stats.find("trace")) {
        std::printf("    trace: %llu recorded, %llu dropped |",
                    static_cast<unsigned long long>(
                        (*trace)["recorded"].asU64()),
                    static_cast<unsigned long long>(
                        (*trace)["dropped"].asU64()));
        for (const auto &[kind, count] : (*trace)["kinds"].members()) {
            if (count.asU64())
                std::printf(" %s=%llu", kind.c_str(),
                            static_cast<unsigned long long>(
                                count.asU64()));
        }
        std::printf("\n");
    }

    if (const JsonValue *per_bank = stats.find("perBank")) {
        std::vector<BankRow> banks;
        for (const JsonValue &b : per_bank->elements()) {
            BankRow row;
            row.channel = b["channel"].asU64();
            row.bank = b["bank"].asU64();
            row.reads = b["reads"].asU64();
            row.conflictStall = b["conflictStallCycles"].asU64();
            row.utilization = b["utilization"].asDouble();
            banks.push_back(row);
        }
        std::sort(banks.begin(), banks.end(),
                  [](const BankRow &a, const BankRow &b) {
                      return a.utilization > b.utilization;
                  });
        if (banks.size() > top_banks)
            banks.resize(top_banks);
        for (const BankRow &b : banks) {
            std::printf("    bank %llu.%llu: util=%.1f%% reads=%llu "
                        "conflictStall=%llu\n",
                        static_cast<unsigned long long>(b.channel),
                        static_cast<unsigned long long>(b.bank),
                        100.0 * b.utilization,
                        static_cast<unsigned long long>(b.reads),
                        static_cast<unsigned long long>(
                            b.conflictStall));
        }
    }
}

/** Walk one report document; handles runResult and comparison shapes. */
void
summarizeDocument(const JsonValue &doc, std::size_t top_banks)
{
    if (const JsonValue *stats = doc.find("stats")) {
        summarizeStats(doc["workload"].asString(),
                       doc["design"].asString(), *stats, top_banks);
        return;
    }
    if (const JsonValue *rows = doc.find("rows")) {
        if (const JsonValue *name = doc.find("experiment"))
            std::printf("== experiment: %s ==\n",
                        name->asString().c_str());
        for (const JsonValue &row : rows->elements()) {
            if (const JsonValue *baseline = row.find("baseline"))
                summarizeDocument(*baseline, top_banks);
            if (const JsonValue *runs = row.find("runs")) {
                for (const JsonValue &run : runs->elements())
                    summarizeDocument(run, top_banks);
            }
        }
        return;
    }
    std::printf("(document with neither \"stats\" nor \"rows\" — "
                "skipped)\n");
}

int
processFile(const char *path, std::size_t top_banks)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "trace_stats: cannot open %s\n%s", path,
                     kUsage);
        return 1;
    }
    std::string line;
    std::size_t lineno = 0;
    std::size_t documents = 0;
    int rc = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        const auto doc = JsonValue::parse(line);
        if (!doc) {
            std::fprintf(stderr, "trace_stats: %s:%zu: %s\n", path,
                         lineno, doc.error().message().c_str());
            rc = 1;
            continue;
        }
        summarizeDocument(*doc, top_banks);
        ++documents;
    }
    if (documents == 0 && rc == 0) {
        std::fprintf(stderr, "trace_stats: %s contains no documents\n",
                     path);
        rc = 1;
    }
    return rc;
}

/** A tiny schema-v2 runResult document exercising every section. */
const char *const kSelftestLine =
    R"({"workload":"selftest","design":"Alloy","isMix":false,)"
    R"("stats":{"schemaVersion":2,"ipcTotal":4.2,)"
    R"("histograms":{"l4HitLatency":{"count":3,"mean":100.0,)"
    R"("min":64,"max":160,"p50":127,"p95":160,"p99":160,)"
    R"("buckets":[{"low":64,"count":2},{"low":128,"count":1}]}},)"
    R"("perBank":[{"channel":0,"bank":1,"reads":7,"writes":3,)"
    R"("rowHits":5,"rowConflicts":1,"busyCycles":900,)"
    R"("conflictStallCycles":40,"utilization":0.75}],)"
    R"("trace":{"recorded":12,"dropped":4,)"
    R"("kinds":{"demandRead":8,"fill":4}}}})";

int
selftest()
{
    const auto doc = JsonValue::parse(kSelftestLine);
    if (!doc) {
        std::fprintf(stderr, "selftest: parse failed: %s\n",
                     doc.error().message().c_str());
        return 1;
    }
    const JsonValue &stats = (*doc)["stats"];
    bool ok = true;
    auto check = [&](bool cond, const char *what) {
        if (!cond) {
            std::fprintf(stderr, "selftest: FAILED: %s\n", what);
            ok = false;
        }
    };
    check(stats["schemaVersion"].asU64() == 2, "schemaVersion == 2");
    const JsonValue &hit = stats["histograms"]["l4HitLatency"];
    check(hit["count"].asU64() == 3, "histogram count");
    check(hit["p95"].asU64() == 160, "histogram p95");
    check(hit["buckets"].size() == 2, "two populated buckets");
    check(stats["perBank"].at(0)["utilization"].asDouble() == 0.75,
          "bank utilization");
    check(stats["trace"]["kinds"]["demandRead"].asU64() == 8,
          "trace kind count");
    check(!JsonValue::parse("{\"unterminated\": ").hasValue(),
          "malformed document rejected");

    // Round-trip the same document through the file-based path: write
    // it as a one-line JSON-lines report and digest it exactly as a
    // real `trace_stats <report.jsonl>` invocation would.
    const bear::tools::TempFile temp("trace-stats-selftest");
    check(temp.valid(), "scratch report file created");
    if (temp.valid()) {
        std::ofstream out(temp.path());
        out << kSelftestLine << "\n";
        out.close();
        check(processFile(temp.path().c_str(), 4) == 0,
              "file-based analyze path accepts the report");
    }

    if (ok) {
        summarizeDocument(*doc, 4);
        std::printf("selftest passed\n");
        return 0;
    }
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const bear::tools::ToolArgs args(argc, argv, {"top"}, kUsage);
    if (args.selftest())
        return selftest();
    const std::string path = args.inputPath();
    return processFile(path.c_str(),
                       static_cast<std::size_t>(args.u64Or("top", 8)));
}
