/**
 * @file
 * Command-line parsing shared by the trace tools (trace_stats,
 * trace_record, trace_dump).
 *
 * All three tools share the same tiny grammar — positional inputs,
 * `--name value` options, a `--selftest` switch — and the same
 * failure contract: any malformed invocation (unknown option, option
 * missing its value, malformed number, missing input file) prints the
 * tool's usage text to stderr and exits with status 2, never runs on
 * half-parsed arguments.  Before this helper each tool hand-rolled
 * the loop and e.g. a bare `--top` silently became an input path.
 */

#ifndef BEAR_TOOLS_TOOL_ARGS_HH
#define BEAR_TOOLS_TOOL_ARGS_HH

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <unistd.h>

namespace bear::tools
{

/**
 * RAII scratch file for tool self-tests: mkstemp() at construction,
 * unlink at destruction, so every early return (and every failure
 * path) cleans up after itself.  Before this helper each selftest
 * carried its own mkstemp/close/unlink choreography and the failure
 * paths leaked the file.
 */
class TempFile
{
  public:
    /** Create `/tmp/<stem>-XXXXXX`; valid() is false when the
     *  temporary cannot be created. */
    explicit TempFile(const char *stem)
    {
        std::string pattern = "/tmp/" + std::string(stem) + "-XXXXXX";
        std::vector<char> buffer(pattern.begin(), pattern.end());
        buffer.push_back('\0');
        const int fd = ::mkstemp(buffer.data());
        if (fd >= 0) {
            ::close(fd);
            path_.assign(buffer.data());
        }
    }

    ~TempFile()
    {
        if (!path_.empty())
            ::unlink(path_.c_str());
    }

    TempFile(const TempFile &) = delete;
    TempFile &operator=(const TempFile &) = delete;

    bool valid() const { return !path_.empty(); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** A parsed command line: positionals plus `--name value` options. */
class ToolArgs
{
  public:
    /**
     * Parse @p argv.  @p value_options lists the option names (without
     * the leading dashes) that take a value; `--selftest` is always
     * recognised as a switch.  Exits(2) with @p usage on malformed
     * input.
     */
    ToolArgs(int argc, char **argv,
             const std::vector<std::string> &value_options,
             const char *usage)
        : usage_(usage)
    {
        for (int i = 1; i < argc; ++i) {
            const char *arg = argv[i];
            if (std::strcmp(arg, "--selftest") == 0) {
                selftest_ = true;
                continue;
            }
            if (std::strncmp(arg, "--", 2) == 0) {
                const std::string name = arg + 2;
                bool known = false;
                for (const auto &option : value_options)
                    known = known || option == name;
                if (!known)
                    fail("unknown option '" + std::string(arg) + "'");
                if (i + 1 >= argc)
                    fail("option '" + std::string(arg) +
                         "' needs a value");
                options_[name] = argv[++i];
                continue;
            }
            positional_.push_back(arg);
        }
    }

    bool selftest() const { return selftest_; }
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /**
     * The single required input path; exits(2) with usage when the
     * invocation has no (or more than one) positional argument.
     */
    std::string
    inputPath() const
    {
        if (positional_.size() != 1) {
            fail(positional_.empty()
                     ? "missing input file"
                     : "expected exactly one input file");
        }
        return positional_.front();
    }

    /** `--name value` as a string, or @p fallback when absent. */
    std::string
    stringOr(const std::string &name, const std::string &fallback) const
    {
        const auto it = options_.find(name);
        return it == options_.end() ? fallback : it->second;
    }

    /** `--name value` as an unsigned integer; exits(2) on non-numbers. */
    std::uint64_t
    u64Or(const std::string &name, std::uint64_t fallback) const
    {
        const auto it = options_.find(name);
        if (it == options_.end())
            return fallback;
        const std::string &text = it->second;
        errno = 0;
        char *end = nullptr;
        const unsigned long long v =
            std::strtoull(text.c_str(), &end, 10);
        if (text.empty() || text.front() == '-' || end != text.c_str() + text.size()
            || errno == ERANGE) {
            fail("option '--" + name + "' wants an unsigned integer, "
                 "got '" + text + "'");
        }
        return v;
    }

    /** Print @p message and the usage text, then exit(2). */
    [[noreturn]] void
    fail(const std::string &message) const
    {
        std::fprintf(stderr, "error: %s\n%s", message.c_str(), usage_);
        std::exit(2);
    }

  private:
    const char *usage_;
    bool selftest_ = false;
    std::vector<std::string> positional_;
    std::map<std::string, std::string> options_;
};

} // namespace bear::tools

#endif // BEAR_TOOLS_TOOL_ARGS_HH
