/**
 * @file
 * beard: the multi-tenant simulation-as-a-service daemon (DESIGN.md
 * §16).
 *
 * Serving mode binds a Unix-domain socket and turns every connection
 * into one tenant session: Hello names a design from the roster, the
 * client streams a .beartrace as CRC-sealed frames, and the tenant's
 * schema-v2 JSON run report comes back when its simulation completes.
 * Admission control is per worker shard — a full shard answers Busy
 * with a retry hint — and SIGINT/SIGTERM starts a graceful drain:
 * in-flight tenants finish and collect their reports, then the daemon
 * exits 130 (mirroring an interrupted sweep).
 *
 *   beard [--socket PATH] [--shards N] [--queue N]
 *   beard --offline <trace> [--design D]
 *   beard --selftest
 *
 * --offline replays a recorded trace through the batch Runner and
 * prints the report a served session of the same file would produce —
 * the reference half of the byte-identity check ci.sh step 10 pins.
 *
 * Simulation knobs come from the BEAR_* environment (BEAR_WARMUP,
 * BEAR_MEASURE, BEAR_SCALE, ...); the daemon adds the BEAR_SERVE_*
 * family (socket, shards, queue, busy-retry hint, receive timeout,
 * idle/slow-loris reaping, drain grace — see
 * ServerOptions::tryFromEnv), socket/shards/queue each overridable by
 * the corresponding flag.  A set-but-malformed variable is a startup
 * error naming the variable and its accepted range — never a silent
 * fallback.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include <unistd.h>

#include "serve/client.hh"
#include "serve/server.hh"
#include "sim/report.hh"
#include "sim/runner.hh"
#include "sim/single_run.hh"
#include "tools/tool_args.hh"
#include "trace/trace_reader.hh"

namespace
{

const char *const kUsage =
    "usage: beard [--socket PATH] [--shards N] [--queue N]\n"
    "       beard --offline <trace> [--design D]\n"
    "       beard --selftest\n"
    "  --socket   Unix socket path (default /tmp/beard.sock,\n"
    "             env BEAR_SERVE_SOCKET)\n"
    "  --shards   worker shards, 1..64 (default 2,\n"
    "             env BEAR_SERVE_SHARDS)\n"
    "  --queue    admitted sessions per shard, 1..1024 (default 4,\n"
    "             env BEAR_SERVE_QUEUE)\n"
    "  --offline  replay a .beartrace through the batch runner and\n"
    "             print the report a served session would produce\n"
    "  --design   design roster name for --offline (default BEAR)\n";

/** Parse a design name or exit(2) naming the roster failure. */
bear::DesignKind
designOrDie(const std::string &name)
{
    auto design = bear::serve::parseDesignName(name);
    if (!design.hasValue()) {
        std::fprintf(stderr, "beard: %s\n%s",
                     design.error().message().c_str(), kUsage);
        std::exit(2);
    }
    return *design;
}

/**
 * Offline reference run: replay @p trace_path through the batch
 * Runner with cores and workload label taken from the file's own
 * header, printing the schema-v2 report to stdout.
 */
int
runOffline(const std::string &trace_path, const std::string &design)
{
    auto reader = bear::trace::TraceReader::open(trace_path);
    if (!reader.hasValue()) {
        std::fprintf(stderr, "beard: %s: %s\n", trace_path.c_str(),
                     reader.error().message().c_str());
        return 1;
    }
    const bear::trace::TraceMeta meta = reader->meta();

    bear::RunnerOptions options = bear::RunnerOptions::fromEnv();
    options.cores = meta.coreCount;
    options.traceInPath = trace_path;

    bear::Runner runner(options);
    const bear::RunResult result =
        runner.runRate(designOrDie(design), meta.workload);
    std::printf("%s\n", bear::runResultToJson(result).c_str());
    return 0;
}

/** Serve until a signal drains the daemon; exit 130 on interrupt. */
int
runDaemon(bear::serve::ServerOptions options)
{
    bear::serve::Server server(std::move(options));
    auto started = server.start();
    if (!started.hasValue()) {
        std::fprintf(stderr, "beard: %s\n",
                     started.error().message().c_str());
        return 1;
    }
    std::printf("beard: serving on %s (%u shards, queue %u)\n",
                server.options().socketPath.c_str(),
                server.options().shards, server.options().queueDepth);
    std::fflush(stdout);

    // SIGINT/SIGTERM → graceful drain.  The handler only sets a flag
    // (async-signal-safe); this watcher turns it into requestDrain.
    bear::installInterruptHandlers();
    std::atomic<bool> stop{false};
    std::thread watcher([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            if (bear::interruptRequested()) {
                server.requestDrain(bear::CancelReason::Interrupt);
                return;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
    });

    const int rc = server.serve();
    stop.store(true, std::memory_order_relaxed);
    watcher.join();
    std::fprintf(stderr, "beard: drained, exit %d\n", rc);
    return rc;
}

/**
 * Self-test: bring a daemon up on a private socket, fetch its stats
 * document over the wire, drain it, and check the lifecycle contract
 * (clean start, parsable stats, unlinked socket, exit code 0).
 */
int
selftest()
{
    bool ok = true;
    auto check = [&](bool cond, const char *what) {
        if (!cond) {
            std::fprintf(stderr, "selftest: FAILED: %s\n", what);
            ok = false;
        }
    };

    bear::serve::ServerOptions options;
    options.socketPath = "/tmp/beard-selftest-"
        + std::to_string(static_cast<unsigned>(::getpid()))
        + ".sock";
    options.shards = 1;
    options.queueDepth = 1;
    {
        bear::serve::Server server(options);
        auto started = server.start();
        check(started.hasValue(), "daemon starts on a fresh socket");
        if (started.hasValue()) {
            auto stats = bear::serve::Client::fetchStats(
                options.socketPath);
            check(stats.hasValue(), "stats fetch succeeds");
            check(stats.hasValue()
                      && stats->find("bear-serve-stats-v1")
                          != std::string::npos,
                  "stats document carries its schema tag");

            server.requestDrain(bear::CancelReason::None);
            check(server.draining(), "drain request is visible");
            check(server.serve() == 0, "non-interrupt drain exits 0");
        }
    }
    // A second daemon must be able to reuse the path immediately.
    {
        bear::serve::Server server(options);
        auto restarted = server.start();
        check(restarted.hasValue(), "socket path is reusable");
        if (restarted.hasValue()) {
            server.requestDrain(bear::CancelReason::Interrupt);
            check(server.serve() == 130, "interrupt drain exits 130");
        }
    }

    if (ok)
        std::printf("selftest passed\n");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const bear::tools::ToolArgs args(
        argc, argv, {"socket", "shards", "queue", "offline", "design"},
        kUsage);
    if (args.selftest())
        return selftest();
    if (!args.positional().empty())
        args.fail("beard takes no positional arguments");

    const std::string offline = args.stringOr("offline", "");
    if (!offline.empty())
        return runOffline(offline, args.stringOr("design", "BEAR"));

    auto parsed = bear::serve::ServerOptions::tryFromEnv();
    if (!parsed.hasValue()) {
        std::fprintf(stderr, "beard: %s\n",
                     parsed.error().message().c_str());
        return 2;
    }
    bear::serve::ServerOptions options = std::move(*parsed);

    options.socketPath = args.stringOr("socket", options.socketPath);
    const std::uint64_t shards = args.u64Or("shards", options.shards);
    if (shards < 1 || shards > 64)
        args.fail("--shards wants 1..64");
    options.shards = static_cast<std::uint32_t>(shards);
    const std::uint64_t queue = args.u64Or("queue", options.queueDepth);
    if (queue < 1 || queue > 1024)
        args.fail("--queue wants 1..1024");
    options.queueDepth = static_cast<std::uint32_t>(queue);

    return runDaemon(std::move(options));
}
