/**
 * @file
 * Workload characterisation report: runs all 16 rate-mode benchmarks
 * on the baseline Alloy Cache and prints the statistics the paper's
 * methodology section fixes (L3 MPKI, footprint) next to the measured
 * values, plus the DRAM-cache behaviour (hit rate, latency, Bloat
 * Factor) that the evaluation figures build on.  Useful both as an
 * example of the Runner API and to validate workload calibration.
 */

#include <cstdio>

#include "common/table.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "sim/runner.hh"

using namespace bear;

int
main()
{
    RunnerOptions options = RunnerOptions::fromEnv();
    Runner runner(options);

    printExperimentHeader(
        "workload_report", "Workload characterisation on baseline Alloy",
        "Table 2: the 16 SPEC benchmarks, their MPKI and footprints",
        options);

    const std::vector<RunOutcome> outcomes =
        runner.runAll(rateJobs(DesignKind::Alloy));

    // Failed jobs (DESIGN.md §11) render as FAIL rows; the report and
    // exit status make the partiality explicit instead of vanishing
    // rows silently.
    int status = 0;
    Table table({"workload", "MPKI(tbl)", "MPKI(sim)", "L4hit%",
                 "hitLat", "missLat", "bloat", "IPC"});
    for (const auto &outcome : outcomes) {
        if (!outcome.hasValue()) {
            const RunError &err = outcome.error();
            table.addRow({err.workload, "FAIL", "-", "-", "-", "-", "-",
                          "-"});
            std::fprintf(stderr, "workload_report: %s\n",
                         err.message().c_str());
            if (err.kind == RunErrorKind::Interrupted || status == 130)
                status = 130;
            else
                status = 3;
            continue;
        }
        const RunResult &r = *outcome;
        const WorkloadProfile &p = profileByName(r.workload);
        table.addRow({r.workload, Table::num(p.l3Mpki, 1),
                      Table::num(r.stats.measuredMpki, 1),
                      Table::num(100.0 * r.stats.l4HitRate, 1),
                      Table::num(r.stats.l4HitLatency, 0),
                      Table::num(r.stats.l4MissLatency, 0),
                      Table::num(r.stats.bloatFactor, 2),
                      Table::num(r.stats.ipcTotal, 2)});
        maybeWriteJsonReport(runResultToJson(r));
    }
    std::printf("%s\n", table.render().c_str());
    return status;
}
