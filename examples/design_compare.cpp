/**
 * @file
 * Design shoot-out: run one workload across every DRAM-cache design in
 * the library and rank them — the paper's Figures 3, 16 and 17
 * condensed into a single command.
 *
 *   ./design_compare [workload]
 */

#include <algorithm>
#include <cstdio>

#include "common/table.hh"
#include "sim/runner.hh"

using namespace bear;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "milc";

    RunnerOptions options = RunnerOptions::fromEnv();
    Runner runner(options);

    const DesignKind kinds[] = {
        DesignKind::NoCache,    DesignKind::LohHill,
        DesignKind::MostlyClean, DesignKind::Alloy,
        DesignKind::InclusiveAlloy, DesignKind::Bab,
        DesignKind::BabDcp,     DesignKind::Bear,
        DesignKind::TagsInSram, DesignKind::SectorCache,
        DesignKind::BwOptimized,
    };

    std::printf("Design comparison on %s (8 copies, rate mode)\n\n",
                workload.c_str());

    const RunResult base = runner.runRate(DesignKind::NoCache, workload);

    struct Row
    {
        std::string name;
        double speedup;
        SystemStats stats;
    };
    std::vector<Row> rows;
    for (const DesignKind kind : kinds) {
        const RunResult r = runner.runRate(kind, workload);
        rows.push_back({designName(kind), normalizedSpeedup(base, r),
                        r.stats});
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  return a.speedup > b.speedup;
              });

    Table table({"design", "speedup vs no-cache", "hit%", "bloat",
                 "hitLat", "SRAM bytes"});
    for (const Row &row : rows) {
        table.addRow({row.name, Table::num(row.speedup, 3),
                      Table::num(100 * row.stats.l4HitRate, 1),
                      Table::num(row.stats.bloatFactor, 2),
                      Table::num(row.stats.l4HitLatency, 0),
                      std::to_string(row.stats.sramOverheadBytes.count())});
    }
    std::printf("%s", table.render().c_str());
    return 0;
}
