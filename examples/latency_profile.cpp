/**
 * @file
 * Observability tour: run one workload with the event trace enabled
 * and read the run as *distributions* instead of averages — latency
 * percentiles, queue-depth histogram, per-bank utilization, and the
 * tail of the event trace.
 *
 *   ./latency_profile [workload] [design]
 *
 * e.g. ./latency_profile mcf BEAR
 *
 * This is the programmatic face of the same data the bench binaries
 * export via BEAR_JSON and tools/trace_stats digests offline.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/event_trace.hh"
#include "obs/histogram.hh"
#include "sim/report.hh"
#include "sim/runner.hh"

using namespace bear;

namespace
{

DesignKind
parseDesign(const std::string &name)
{
    const DesignKind kinds[] = {
        DesignKind::Alloy,       DesignKind::Bab,
        DesignKind::BabDcp,      DesignKind::Bear,
        DesignKind::InclusiveAlloy, DesignKind::LohHill,
        DesignKind::MostlyClean, DesignKind::TagsInSram,
        DesignKind::SectorCache, DesignKind::BwOptimized,
        DesignKind::NoCache,
    };
    for (const DesignKind kind : kinds)
        if (name == designName(kind))
            return kind;
    std::fprintf(stderr, "unknown design '%s', using BEAR\n",
                 name.c_str());
    return DesignKind::Bear;
}

void
printLatencyLine(const char *name, const obs::LatencyHistogram &hist)
{
    std::printf("  %-22s n=%-9llu mean=%-8.1f p50=%-6llu p95=%-6llu "
                "p99=%-6llu max=%llu\n",
                name, static_cast<unsigned long long>(hist.count()),
                hist.mean(),
                static_cast<unsigned long long>(
                    hist.percentile(0.50).count()),
                static_cast<unsigned long long>(
                    hist.percentile(0.95).count()),
                static_cast<unsigned long long>(
                    hist.percentile(0.99).count()),
                static_cast<unsigned long long>(hist.max().count()));
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "mcf";
    const DesignKind design = parseDesign(argc > 2 ? argv[2] : "BEAR");

    RunnerOptions options = RunnerOptions::fromEnv();
    if (options.traceCapacity == 0)
        options.traceCapacity = 4096; // the point of this example
    Runner runner(options);

    std::printf("Latency profile: %s on %s (trace ring: %zu events)\n\n",
                workload.c_str(), designName(design),
                options.traceCapacity);
    const RunResult run = runner.runRate(design, workload);
    const SystemStats &stats = run.stats;
    if (maybeWriteJsonReport(runResultToJson(run)))
        std::printf("(run appended to $BEAR_JSON as a JSON line)\n\n");

    std::printf("Latency distributions (cycles):\n");
    printLatencyLine("L4 hit", stats.l4HitLatencyHist);
    printLatencyLine("L4 miss", stats.l4MissLatencyHist);
    printLatencyLine("L4 queue delay", stats.l4QueueDelayHist);
    printLatencyLine("memory queue delay", stats.memQueueDelayHist);
    std::printf("  (histogram means match the scalar stats: hit %.1f, "
                "miss %.1f)\n\n",
                stats.l4HitLatency, stats.l4MissLatency);

    std::printf("L4 write-queue depth: mean %.1f, p95 %llu, max %llu\n\n",
                stats.l4WriteQueueDepthHist.mean(),
                static_cast<unsigned long long>(
                    stats.l4WriteQueueDepthHist.percentile(0.95).count()),
                static_cast<unsigned long long>(
                    stats.l4WriteQueueDepthHist.max().count()));

    // The five busiest banks: where bandwidth bloat turns into queueing.
    std::vector<BankUtilization> banks = stats.l4Banks;
    std::sort(banks.begin(), banks.end(),
              [](const BankUtilization &a, const BankUtilization &b) {
                  return a.utilization > b.utilization;
              });
    std::printf("Busiest DRAM-cache banks:\n");
    for (std::size_t i = 0; i < banks.size() && i < 5; ++i) {
        const BankUtilization &b = banks[i];
        std::printf("  ch%u bank%-3u util=%5.1f%% reads=%-8llu "
                    "rowHits=%-8llu conflictStall=%llu\n",
                    b.channel, b.bank, 100.0 * b.utilization,
                    static_cast<unsigned long long>(b.reads),
                    static_cast<unsigned long long>(b.rowHits),
                    static_cast<unsigned long long>(
                        b.conflictStallCycles.count()));
    }

    if (stats.trace.enabled) {
        std::printf("\nEvent trace: %llu recorded, %llu dropped "
                    "(ring keeps the newest)\n",
                    static_cast<unsigned long long>(stats.trace.recorded),
                    static_cast<unsigned long long>(stats.trace.dropped));
        for (std::size_t k = 0; k < stats.trace.kindCounts.size(); ++k) {
            if (stats.trace.kindCounts[k]) {
                std::printf("  %-18s %llu\n",
                            obs::traceEventName(
                                static_cast<obs::TraceEventKind>(k)),
                            static_cast<unsigned long long>(
                                stats.trace.kindCounts[k]));
            }
        }
    }
    return 0;
}
