/**
 * @file
 * Quickstart: build an 8-core system with a DRAM cache, run a SPEC-like
 * workload, and print the headline metrics the BEAR paper is about —
 * hit rate, hit latency, and the bandwidth Bloat Factor.
 *
 *   ./quickstart [workload] [design]
 *
 * e.g. ./quickstart soplex BEAR
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "sim/runner.hh"

using namespace bear;

namespace
{

DesignKind
parseDesign(const std::string &name)
{
    const DesignKind kinds[] = {
        DesignKind::Alloy,       DesignKind::Bab,
        DesignKind::BabDcp,      DesignKind::Bear,
        DesignKind::InclusiveAlloy, DesignKind::LohHill,
        DesignKind::MostlyClean, DesignKind::TagsInSram,
        DesignKind::SectorCache, DesignKind::BwOptimized,
        DesignKind::NoCache,
    };
    for (const DesignKind kind : kinds)
        if (name == designName(kind))
            return kind;
    std::fprintf(stderr, "unknown design '%s', using BEAR\n",
                 name.c_str());
    return DesignKind::Bear;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "soplex";
    const DesignKind design =
        parseDesign(argc > 2 ? argv[2] : "BEAR");

    RunnerOptions options = RunnerOptions::fromEnv();
    Runner runner(options);

    std::printf("Running %s (8 copies, rate mode) on the %s DRAM cache\n",
                workload.c_str(), designName(design));
    std::printf("(1 GB cache at scale %.3g => %.0f MB; 8x bandwidth "
                "ratio over DDR)\n\n",
                options.scale, 1024.0 * options.scale);

    const RunResult base = runner.runRate(DesignKind::Alloy, workload);
    const RunResult run = runner.runRate(design, workload);

    std::printf("%-28s %12s %12s\n", "metric", "Alloy",
                designName(design));
    std::printf("%-28s %12.3f %12.3f\n", "L4 hit rate",
                base.stats.l4HitRate, run.stats.l4HitRate);
    std::printf("%-28s %12.1f %12.1f\n", "L4 hit latency (cycles)",
                base.stats.l4HitLatency, run.stats.l4HitLatency);
    std::printf("%-28s %12.1f %12.1f\n", "L4 miss latency (cycles)",
                base.stats.l4MissLatency, run.stats.l4MissLatency);
    std::printf("%-28s %12.2f %12.2f\n", "Bloat Factor",
                base.stats.bloatFactor, run.stats.bloatFactor);
    std::printf("%-28s %12.2f %12.2f\n", "total IPC",
                base.stats.ipcTotal, run.stats.ipcTotal);
    std::printf("%-28s %12s %12.3f\n", "speedup vs Alloy", "1.000",
                normalizedSpeedup(base, run));
    return 0;
}
