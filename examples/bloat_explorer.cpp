/**
 * @file
 * Bloat explorer: build a system around a *custom* synthetic workload
 * and watch where the DRAM-cache bandwidth goes, category by category.
 *
 *   ./bloat_explorer [footprintMB] [writeFraction] [runLength]
 *
 * This is the paper's Section 2.3 analysis turned into a tool: crank
 * the write fraction and watch Writeback Probe/Update bloat grow;
 * stretch the footprint and watch Miss Probe/Fill take over; then see
 * what BEAR claws back.
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/table.hh"
#include "dramcache/bloat.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace bear;

namespace
{

SystemStats
runSystem(DesignKind design, const WorkloadProfile &profile)
{
    SystemConfig config;
    config.design = design;
    std::vector<std::unique_ptr<RefStream>> streams;
    for (std::uint32_t c = 0; c < config.cores; ++c) {
        streams.push_back(std::make_unique<WorkloadStream>(
            profile, 42 + c, config.scale));
    }
    System sys(config, std::move(streams));
    sys.run(300000);
    sys.resetStats();
    sys.run(120000);
    return sys.stats();
}

} // namespace

int
main(int argc, char **argv)
{
    WorkloadProfile profile;
    profile.name = "custom";
    profile.l3Mpki = 20.0;
    profile.footprintBytes =
        (argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2048) << 20;
    profile.writeFraction = argc > 2 ? std::strtod(argv[2], nullptr) : 0.3;
    profile.spatialRunMean =
        argc > 3 ? std::strtod(argv[3], nullptr) : 4.0;
    profile.warmBytes = 12ULL << 20;
    profile.warmProb = 0.5;

    std::printf("Custom workload: footprint %llu MB, %.0f%% stores, "
                "run length %.1f, MPKI %.1f\n\n",
                static_cast<unsigned long long>(
                    profile.footprintBytes >> 20),
                100 * profile.writeFraction, profile.spatialRunMean,
                profile.l3Mpki);

    const SystemStats alloy = runSystem(DesignKind::Alloy, profile);
    const SystemStats bear_s = runSystem(DesignKind::Bear, profile);

    Table table({"category", "Alloy", "BEAR"});
    for (std::size_t c = 0; c < BloatTracker::kCategories; ++c) {
        table.addRow({bloatCategoryName(static_cast<BloatCategory>(c)),
                      Table::num(alloy.bloatBreakdown[c], 2),
                      Table::num(bear_s.bloatBreakdown[c], 2)});
    }
    table.addRow({"TOTAL", Table::num(alloy.bloatFactor, 2),
                  Table::num(bear_s.bloatFactor, 2)});
    std::printf("%s\n", table.render().c_str());
    std::printf("hit rate    : %.1f%% -> %.1f%%\n",
                100 * alloy.l4HitRate, 100 * bear_s.l4HitRate);
    std::printf("hit latency : %.0f -> %.0f cycles\n", alloy.l4HitLatency,
                bear_s.l4HitLatency);
    std::printf("total IPC   : %.2f -> %.2f\n", alloy.ipcTotal,
                bear_s.ipcTotal);
    return 0;
}
