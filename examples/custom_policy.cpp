/**
 * @file
 * Extending the library: implement a *new* DRAM-cache policy against
 * the public DramCache interface and evaluate it with the stock
 * system, workloads and metrics.
 *
 * The toy policy here is "WriteThroughAlloy": a direct-mapped TAD
 * cache that keeps itself entirely clean by writing dirty LLC victims
 * to both the cache and main memory.  Writeback Probes disappear (a
 * clean cache never needs them for correctness if updates are
 * write-through) at the price of extra main-memory write traffic —
 * a different point in the paper's design space.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "common/table.hh"
#include "dramcache/alloy_cache.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace bear;

namespace
{

/** Always-clean Alloy variant: write-through writebacks. */
class WriteThroughAlloy : public DramCache
{
  public:
    WriteThroughAlloy(std::uint64_t capacity, DramSystem &dram,
                      DramSystem &memory, BloatTracker &bloat)
        : DramCache(dram, memory, bloat), sets_(Bytes{capacity} / kLineSize),
          layout_(sets_, dram.geometry()), tads_(sets_)
    {
    }

    std::string name() const override { return "WriteThroughAlloy"; }

  protected:
    // The base-class read() wrapper counts demand hits/misses and
    // samples the latency histograms; the policy only reports where
    // the data came from.
    DramCacheReadOutcome
    serviceRead(Cycle at, LineAddr line, Pc, CoreId) override
    {
        const std::uint64_t set = line % sets_;
        const std::uint64_t tag = line / sets_;
        Tad &tad = tads_[set];
        const DramCoord coord = layout_.coordOf(set);

        DramCacheReadOutcome outcome;
        const DramResult probe = dram_.read(at, coord, kTadTransfer);
        if (tad.valid && tad.tag == tag) {
            bloat_.note(BloatCategory::HitProbe, kTadTransfer);
            bloat_.noteUseful();
            outcome.source = ServiceSource::L4Hit;
            outcome.presentAfter = true;
            outcome.dataReady = probe.dataReady;
            return outcome;
        }
        bloat_.note(BloatCategory::MissProbe, kTadTransfer);
        const DramResult mem = memory_.readLine(probe.dataReady, line);
        outcome.source = ServiceSource::L4MissMemory;
        outcome.dataReady = mem.dataReady;
        // The cache is always clean: the victim needs no rescue.
        if (tad.valid)
            notifyEviction(tad.tag * sets_ + set);
        tad.tag = tag;
        tad.valid = true;
        dram_.write(mem.dataReady, coord, kTadTransfer);
        bloat_.note(BloatCategory::MissFill, kTadTransfer);
        outcome.presentAfter = true;
        return outcome;
    }

    Cycle
    serviceWriteback(const WritebackRequest &request) override
    {
        // Write-through: main memory always gets the data, and a
        // present line is refreshed without any probe (updating a
        // stale line is harmless when memory is the source of truth —
        // but a *mismatched* line must not be clobbered, so the update
        // is dropped unless the tag matches, which the controller
        // knows only from this cheap in-SRAM mirror in this toy).
        const std::uint64_t set = request.line % sets_;
        Tad &tad = tads_[set];
        memory_.writeLine(request.issuedAt, request.line);
        if (tad.valid && tad.tag == request.line / sets_) {
            ++writeback_hits_;
            dram_.write(request.issuedAt, layout_.coordOf(set),
                        kTadTransfer);
            bloat_.note(BloatCategory::WritebackUpdate, kTadTransfer);
        } else {
            ++writeback_misses_;
        }
        return request.issuedAt;
    }

  private:
    struct Tad
    {
        std::uint64_t tag = 0;
        bool valid = false;
    };

    std::uint64_t sets_;
    TadLayout layout_;
    std::vector<Tad> tads_;
};

SystemStats
runBaseline(const std::string &workload)
{
    SystemConfig config;
    config.design = DesignKind::Alloy;
    std::vector<std::unique_ptr<RefStream>> streams;
    for (std::uint32_t c = 0; c < config.cores; ++c) {
        streams.push_back(std::make_unique<WorkloadStream>(
            profileByName(workload), 42 + c, config.scale));
    }
    System sys(config, std::move(streams));
    sys.run(300000);
    sys.resetStats();
    sys.run(120000);
    return sys.stats();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "lbm";
    std::printf("Custom-policy example on %s: baseline Alloy vs a "
                "write-through variant\n\n",
                workload.c_str());

    // Baseline through the stock system.
    const SystemStats alloy = runBaseline(workload);

    // The custom design drives the same substrates directly.
    DramSystem dram("l4", DramTiming{}, makeCacheGeometry());
    DramSystem memory("ddr", DramTiming{}, makeMemoryGeometry());
    BloatTracker bloat;
    WriteThroughAlloy custom(64ULL << 20, dram, memory, bloat);

    WorkloadStream stream(profileByName(workload), 42, 0.0625);
    Cycle t = 0;
    std::uint64_t hits = 0, accesses = 0;
    for (int i = 0; i < 400000; ++i) {
        const MemRef ref = stream.next();
        const auto out = custom.read(t, lineOf(ref.vaddr), ref.pc, 0);
        hits += out.hit() ? 1 : 0;
        ++accesses;
        if (ref.isWrite)
            custom.writeback({lineOf(ref.vaddr), false, out.dataReady});
        t += 8 + ref.instGap / 2;
    }

    Table table({"metric", "Alloy (full system)", "WriteThrough (raw)"});
    table.addRow({"hit rate",
                  Table::num(100 * alloy.l4HitRate, 1) + "%",
                  Table::num(100.0 * static_cast<double>(hits)
                                / static_cast<double>(accesses),
                            1) + "%"});
    table.addRow({"bloat factor", Table::num(alloy.bloatFactor, 2),
                  Table::num(bloat.bloatFactor(), 2)});
    table.addRow({"WbProbe bloat",
                  Table::num(alloy.bloatBreakdown[static_cast<int>(
                                 BloatCategory::WritebackProbe)],
                             2),
                  Table::num(bloat.categoryFactor(
                                 BloatCategory::WritebackProbe),
                             2)});
    std::printf("%s\n", table.render().c_str());
    std::printf("The write-through variant eliminates Writeback Probes "
                "entirely;\nits cost is doubled main-memory write "
                "traffic (%llu line writes).\n",
                static_cast<unsigned long long>(memory.totalWrites()));
    return 0;
}
